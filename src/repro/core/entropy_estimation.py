"""Entropy estimation: how much of the corrected key does Eve know?

Privacy amplification "depends on having an estimate of the eavesdropping-free
entropy of the quantum channel — the amount of information in the channel
beyond what Eve might know" (paper section 6).  The estimate is assembled
from four components, each of which this module computes:

1. **Non-transparent (error-inducing) observations** — bounded by a *defense
   function* of the observed error count.  The paper implements two, due to
   Bennett et al. and to Slutsky et al., and lets the operator choose; both
   are provided here (:class:`BennettDefense`, :class:`SlutskyDefense`).
2. **Transparent eavesdropping** — beam-splitting / PNS style attacks that
   cause no errors.  For a weak-coherent source the worst-case leak is
   proportional to the *transmitted* pulse count times the multi-photon
   probability; for an entangled source it is proportional to the *received*
   count.  Both accountings are implemented; the engine defaults to the
   received-photon accounting that the operating system actually keyed with.
3. **Publicly disclosed information** — "precisely the number of sets of bits
   whose parities have been disclosed" during error correction.
4. **Non-randomness of the raw bits** — a placeholder measure ``r`` exactly as
   in the paper ("only a placeholder at the moment, until randomness testing
   is put into the system").

The components are combined by the Appendix's resultant-entropy formula:
from the ``b`` received (error-corrected) bits subtract ``d`` disclosed parity
bits, ``r``, the defense-function estimate, the transparent-leak estimate, and
a confidence margin of ``c`` combined standard deviations.

**A note on formula reconstruction.**  The Appendix typesets the Bennett and
Slutsky expressions as images that do not survive text extraction cleanly.
The implementations below reconstruct them from the surviving fragments, the
cited sources (Bennett et al. 1992; Slutsky et al. 1998), and the constraints
the paper itself states (both estimates carry a standard-deviation margin;
Slutsky's is parameterised by an attack-success probability and saturates the
whole key as the error rate grows).  EXPERIMENTS.md records this as a
documented deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.mathkit.entropy import combine_stddevs, eavesdropping_failure_probability
from repro.util.units import multi_photon_probability, non_empty_pulse_probability


@dataclass(frozen=True)
class EntropyInputs:
    """The observable inputs to entropy estimation, as listed in section 6.

    ``b``  the number of received (sifted, error-corrected) bits
    ``e``  the number of errors found in the sifted bits
    ``n``  the total number of bits (pulses) transmitted
    ``d``  the number of parity bits disclosed during error correction
    ``r``  a non-randomness measure from randomness tests (placeholder)
    """

    sifted_bits: int
    error_bits: int
    transmitted_pulses: int
    disclosed_parities: int
    non_randomness: int = 0
    #: Mean photon number of the source, needed for the multi-photon terms.
    mean_photon_number: float = 0.1
    #: Whether the source is entangled-pair (received-count multi-photon
    #: accounting) or weak-coherent (transmitted-count accounting available).
    entangled_source: bool = False

    def __post_init__(self) -> None:
        if self.sifted_bits < 0 or self.error_bits < 0:
            raise ValueError("counts must be non-negative")
        if self.error_bits > self.sifted_bits:
            raise ValueError("cannot have more errors than sifted bits")
        if self.transmitted_pulses < 0 or self.disclosed_parities < 0:
            raise ValueError("counts must be non-negative")

    @property
    def error_rate(self) -> float:
        if self.sifted_bits == 0:
            return 0.0
        return self.error_bits / self.sifted_bits


@dataclass
class DefenseEstimate:
    """One component of Eve's information: a central value and its std. deviation."""

    information_bits: float
    stddev_bits: float
    name: str = ""


class BennettDefense:
    """The Bennett et al. defense function.

    Bennett, Bessette, Brassard, Salvail and Smolin (J. Cryptology 1992)
    bound the information an eavesdropper gains from error-inducing
    (intercept/resend style) measurements by a linear function of the observed
    error count: every induced error corresponds to at most ``4/sqrt(2)`` bits
    of expected leakage (an intercepted photon in the Breidbart basis yields
    at most ``1/sqrt(2)`` bits and causes an error with probability 1/4).  The
    paper notes this estimate carries a margin of 5 standard deviations
    including the multi-photon term.
    """

    name = "bennett"

    #: Leakage per observed error bit: 4/sqrt(2) = 2*sqrt(2).
    LEAK_PER_ERROR = 4.0 / math.sqrt(2.0)

    def estimate(self, inputs: EntropyInputs) -> DefenseEstimate:
        e = inputs.error_bits
        information = self.LEAK_PER_ERROR * e
        # Reconstructed from the Appendix: the uncertainty of the estimate is
        # of order sqrt(e) with a constant combining the binomial spread of
        # the error count and of the interception success, (4 + 2*sqrt(2)).
        stddev = math.sqrt((4.0 + 2.0 * math.sqrt(2.0)) * max(e, 0))
        information = min(information, inputs.sifted_bits)
        return DefenseEstimate(information, stddev, self.name)


class SlutskyDefense:
    """The Slutsky et al. defense-frontier function.

    Slutsky, Rao, Sun, Tancevski and Fainman (Applied Optics 1998) derive the
    maximum information an individual attack can have obtained as a function
    of the observed error *rate*; the per-bit defense function is

        t(e) = 1 + log2( 1 - 1/2 * ( max(1 - 3e, 0) / (1 - e) )^2 )

    which is 0 at e = 0 and reaches a full bit per key bit at e = 1/3.  The
    estimate over the block is ``b * t(e)``.  Its uncertainty is driven by the
    binomial spread of the observed error count; the engine evaluates the
    defense function at the error rate shifted by one standard deviation and
    uses the difference as the term's standard deviation, exactly in the
    spirit of the paper's "separate out the standard deviation of each term".
    """

    name = "slutsky"

    @staticmethod
    def per_bit_defense(error_rate: float) -> float:
        if error_rate < 0:
            raise ValueError("error rate must be non-negative")
        if error_rate >= 1.0 / 3.0:
            return 1.0
        numerator = max(1.0 - 3.0 * error_rate, 0.0)
        denominator = 1.0 - error_rate
        inner = 1.0 - 0.5 * (numerator / denominator) ** 2
        return 1.0 + math.log2(inner)

    def estimate(self, inputs: EntropyInputs) -> DefenseEstimate:
        b = inputs.sifted_bits
        if b == 0:
            return DefenseEstimate(0.0, 0.0, self.name)
        rate = inputs.error_rate
        information = b * self.per_bit_defense(rate)
        # One-sigma shift of the observed error rate.
        rate_sigma = math.sqrt(max(rate * (1.0 - rate), 0.0) / b)
        shifted = min(rate + rate_sigma, 1.0)
        stddev = b * (self.per_bit_defense(shifted) - self.per_bit_defense(rate))
        information = min(information, b)
        return DefenseEstimate(information, max(stddev, 0.0), self.name)


class TransparentLeakEstimator:
    """Information from eavesdropping that causes no errors (section 6).

    Beam-splitting and POVM attacks exploit multi-photon pulses.  The paper
    contrasts two accountings:

    * **weak-coherent, worst case** — "proportional to the number of
      transmitted bits times the multi-photon probability";
    * **entangled (and the operational weak-coherent figure)** — proportional
      to the number of *received* bits times the multi-photon fraction of
      detected pulses.

    ``worst_case=True`` selects the transmitted-count accounting.
    """

    def __init__(self, worst_case: bool = False):
        self.worst_case = worst_case

    def estimate(self, inputs: EntropyInputs) -> DefenseEstimate:
        mu = inputs.mean_photon_number
        p_multi = multi_photon_probability(mu)
        p_nonempty = non_empty_pulse_probability(mu)
        if inputs.entangled_source or not self.worst_case:
            # Fraction of detected pulses that carried extra photons Eve could
            # have split off without affecting the error rate.
            multi_fraction = 0.0 if p_nonempty == 0 else p_multi / p_nonempty
            information = inputs.sifted_bits * multi_fraction
            stddev = math.sqrt(
                max(inputs.sifted_bits * multi_fraction * (1.0 - multi_fraction), 0.0)
            )
        else:
            information = inputs.transmitted_pulses * p_multi
            stddev = math.sqrt(
                max(inputs.transmitted_pulses * p_multi * (1.0 - p_multi), 0.0)
            )
        information = min(information, inputs.sifted_bits)
        return DefenseEstimate(information, stddev, "transparent")


@dataclass
class EntropyEstimate:
    """The final estimate handed to privacy amplification."""

    inputs: EntropyInputs
    defense: DefenseEstimate
    transparent: DefenseEstimate
    confidence_sigmas: float
    distillable_bits: int
    #: Break-down retained for reporting/benchmarks.
    margin_bits: float = 0.0

    @property
    def secret_fraction(self) -> float:
        """Distillable bits per sifted bit."""
        if self.inputs.sifted_bits == 0:
            return 0.0
        return self.distillable_bits / self.inputs.sifted_bits

    @property
    def eavesdropping_success_probability(self) -> float:
        """Roughly the paper's "about 10^-6" figure for c = 5."""
        return eavesdropping_failure_probability(self.confidence_sigmas)


class EntropyEstimator:
    """Combines the components per the Appendix's resultant-entropy formula.

    distillable = b - d - r - t_defense - t_transparent - c * sqrt(sum of variances)
    """

    def __init__(
        self,
        defense: Optional[object] = None,
        confidence_sigmas: float = 5.0,
        worst_case_multiphoton: bool = False,
    ):
        self.defense = defense or SlutskyDefense()
        self.confidence_sigmas = confidence_sigmas
        self.transparent_estimator = TransparentLeakEstimator(worst_case_multiphoton)
        if confidence_sigmas < 0:
            raise ValueError("confidence parameter must be non-negative")

    def estimate(self, inputs: EntropyInputs) -> EntropyEstimate:
        defense = self.defense.estimate(inputs)
        transparent = self.transparent_estimator.estimate(inputs)
        margin = self.confidence_sigmas * combine_stddevs(
            [defense.stddev_bits, transparent.stddev_bits]
        )
        distillable = (
            inputs.sifted_bits
            - inputs.disclosed_parities
            - inputs.non_randomness
            - defense.information_bits
            - transparent.information_bits
            - margin
        )
        distillable_bits = max(int(math.floor(distillable)), 0)
        return EntropyEstimate(
            inputs=inputs,
            defense=defense,
            transparent=transparent,
            confidence_sigmas=self.confidence_sigmas,
            distillable_bits=distillable_bits,
            margin_bits=margin,
        )
