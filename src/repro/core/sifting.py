"""Sifting: winnowing away the failed qubits (paper section 5).

"Sifting is the process whereby Alice and Bob winnow away all the obvious
'failed qubits' from a series of pulses" — slots where nothing was detected,
slots where both detectors fired, and slots where Bob's measurement basis did
not match Alice's.  After a *sift / sift response* transaction both sides hold
only the symbols Bob received in a matching basis; on average half of Bob's
detections survive.

The sift message from Bob to Alice indicates which slots produced detections.
Because detections are rare (one slot in a few hundred at the paper's
operating point), the DARPA engine run-length encodes that indication so "runs
of identical values (and in particular of 'no detection' values) are
compressed to take very little space" (paper Appendix).  The same encoding is
implemented here, along with the naive explicit-index encoding used only to
measure the savings (experiment E12).

Importantly for security accounting, the sift exchange reveals *which* slots
were detected and which bases were used, but never reveals bit values; sifting
therefore discloses no key information to Eve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.messages import NaiveSiftMessage, SiftMessage, SiftResponseMessage
from repro.optics.channel import FrameResult
from repro.util.bits import BitString


# --------------------------------------------------------------------------- #
# Run-length encoding of the detection indication
# --------------------------------------------------------------------------- #

def run_length_encode(flags: Sequence[int]) -> List[int]:
    """Encode a 0/1 detection sequence as alternating run lengths.

    The encoding always starts with the length of an initial run of zeros
    (which may be zero if the first slot was a detection) and then alternates
    (ones-run, zeros-run, ...).  ``sum(runs) == len(flags)`` always holds.
    """
    runs: List[int] = []
    current_value = 0
    current_length = 0
    for flag in flags:
        flag = 1 if flag else 0
        if flag == current_value:
            current_length += 1
        else:
            runs.append(current_length)
            current_value = flag
            current_length = 1
    runs.append(current_length)
    return runs


def run_length_decode(runs: Sequence[int], expected_length: Optional[int] = None) -> List[int]:
    """Decode alternating run lengths back into the 0/1 detection sequence."""
    flags: List[int] = []
    value = 0
    for run in runs:
        if run < 0:
            raise ValueError("run lengths must be non-negative")
        flags.extend([value] * run)
        value ^= 1
    if expected_length is not None and len(flags) != expected_length:
        raise ValueError(
            f"decoded length {len(flags)} does not match expected {expected_length}"
        )
    return flags


# --------------------------------------------------------------------------- #
# The sifting protocol
# --------------------------------------------------------------------------- #

@dataclass
class SiftResult:
    """Both sides' sifted keys plus the statistics later stages need."""

    alice_key: BitString
    bob_key: BitString
    #: Slot indices (into the originating frame batch) of each sifted bit.
    slot_indices: List[int]
    n_slots_transmitted: int
    n_detections_reported: int
    sift_message: SiftMessage
    sift_response: SiftResponseMessage

    @property
    def n_sifted(self) -> int:
        return len(self.alice_key)

    @property
    def error_count(self) -> int:
        """Number of positions where Bob's sifted bit differs from Alice's.

        Only the simulation can see this directly; the protocol itself learns
        it during error correction.  Tests and benchmarks use it as ground
        truth.
        """
        return self.alice_key.hamming_distance(self.bob_key)

    @property
    def qber(self) -> float:
        if self.n_sifted == 0:
            return 0.0
        return self.error_count / self.n_sifted

    @property
    def sifted_fraction(self) -> float:
        """Sifted bits per transmitted slot (the paper's 1-in-200 figure)."""
        if self.n_slots_transmitted == 0:
            return 0.0
        return self.n_sifted / self.n_slots_transmitted


class SiftingProtocol:
    """Runs the sift / sift-response transaction for a batch of slots."""

    def __init__(self, frame_id: int = 0):
        self.frame_id = frame_id

    # -- Bob's side ------------------------------------------------------ #

    def build_sift_message(self, frame: FrameResult) -> SiftMessage:
        """Bob reports which slots produced a usable click, and his bases."""
        usable = frame.usable_clicks
        flags = usable.astype(np.uint8).tolist()
        runs = run_length_encode(flags)
        detected_bases = frame.bob_basis[usable].astype(int).tolist()
        return SiftMessage(
            frame_id=self.frame_id,
            n_slots=frame.n_slots,
            detection_runs=runs,
            detected_bases=detected_bases,
        )

    def build_naive_sift_message(self, frame: FrameResult) -> NaiveSiftMessage:
        """The uncompressed sift message, for the encoding comparison only."""
        usable = frame.usable_clicks
        indices = np.nonzero(usable)[0].astype(int).tolist()
        detected_bases = frame.bob_basis[usable].astype(int).tolist()
        return NaiveSiftMessage(
            frame_id=self.frame_id,
            n_slots=frame.n_slots,
            detected_slots=indices,
            detected_bases=detected_bases,
        )

    # -- Alice's side ---------------------------------------------------- #

    def build_sift_response(
        self, frame: FrameResult, sift_message: SiftMessage
    ) -> SiftResponseMessage:
        """Alice accepts the detections whose reported basis matches hers."""
        detected_slots = _decode_detected_slots(sift_message, frame.n_slots)
        if len(detected_slots) != len(sift_message.detected_bases):
            raise ValueError("sift message bases do not match the detection runs")
        accept = np.asarray(frame.alice_basis)[detected_slots].astype(int) == np.asarray(
            sift_message.detected_bases, dtype=int
        )
        return SiftResponseMessage(
            frame_id=self.frame_id, accept_mask=accept.astype(int).tolist()
        )

    # -- Both sides ------------------------------------------------------ #

    def sift(self, frame: FrameResult) -> SiftResult:
        """Run the full transaction and return both sides' sifted keys."""
        sift_message = self.build_sift_message(frame)
        sift_response = self.build_sift_response(frame, sift_message)

        detected_slots = _decode_detected_slots(sift_message, frame.n_slots)
        kept = detected_slots[np.asarray(sift_response.accept_mask, dtype=bool)]

        return SiftResult(
            alice_key=_extract_key_bits(frame.alice_value, kept),
            bob_key=_extract_key_bits(frame.bob_value, kept),
            slot_indices=kept.tolist(),
            n_slots_transmitted=frame.n_slots,
            n_detections_reported=len(detected_slots),
            sift_message=sift_message,
            sift_response=sift_response,
        )


def _decode_detected_slots(sift_message: SiftMessage, n_slots: int) -> np.ndarray:
    """Slot indices of the reported detections, decoded from the run lengths."""
    runs = np.asarray(sift_message.detection_runs, dtype=np.intp)
    if np.any(runs < 0):
        raise ValueError("run lengths must be non-negative")
    if int(runs.sum()) != n_slots:
        raise ValueError(
            f"decoded length {int(runs.sum())} does not match expected {n_slots}"
        )
    # Runs alternate zeros/ones starting with zeros: detections are the slots
    # covered by the odd-position runs.
    flags = np.repeat(np.arange(len(runs), dtype=np.intp) & 1, runs)
    return np.nonzero(flags)[0]


def _extract_key_bits(values: np.ndarray, slots: np.ndarray) -> BitString:
    """Gather the bit values at ``slots`` into a packed :class:`BitString`.

    ``np.packbits`` packs most-significant-bit first, matching the
    :meth:`BitString.from_bytes` convention; the zero padding it appends to
    the last byte is sliced off by length.
    """
    n = len(slots)
    if n == 0:
        return BitString()
    picked = np.asarray(values)[slots].astype(np.uint8)
    return BitString.from_bytes(np.packbits(picked).tobytes())[:n]
