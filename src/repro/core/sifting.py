"""Sifting: winnowing away the failed qubits (paper section 5).

"Sifting is the process whereby Alice and Bob winnow away all the obvious
'failed qubits' from a series of pulses" — slots where nothing was detected,
slots where both detectors fired, and slots where Bob's measurement basis did
not match Alice's.  After a *sift / sift response* transaction both sides hold
only the symbols Bob received in a matching basis; on average half of Bob's
detections survive.

The sift message from Bob to Alice indicates which slots produced detections.
Because detections are rare (one slot in a few hundred at the paper's
operating point), the DARPA engine run-length encodes that indication so "runs
of identical values (and in particular of 'no detection' values) are
compressed to take very little space" (paper Appendix).  The same encoding is
implemented here, along with the naive explicit-index encoding used only to
measure the savings (experiment E12).

Importantly for security accounting, the sift exchange reveals *which* slots
were detected and which bases were used, but never reveals bit values; sifting
therefore discloses no key information to Eve.

Vectorization contract
----------------------

The announcement path stays in packed numpy arrays end to end:
:func:`run_length_encode` is a few whole-array passes
(``np.flatnonzero``/``np.diff`` over the click mask), decoding detections is
O(detections) rather than O(slots), and ``SiftResult``/message internals carry
uint8/intp arrays instead of per-slot Python lists.  The original scalar loop
is retained as :func:`run_length_encode_scalar` — it is the behavioural
oracle; ``tests/test_sifting.py`` pins the vectorized encoder against it on
randomized inputs and real frames.  Both produce the *identical* runs list:
alternating (zeros-run, ones-run, ...) lengths starting with a zeros-run that
may be empty, with ``sum(runs) == len(flags)`` always.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.messages import NaiveSiftMessage, SiftMessage, SiftResponseMessage
from repro.optics.channel import FrameResult
from repro.util.bits import BitString


# --------------------------------------------------------------------------- #
# Run-length encoding of the detection indication
# --------------------------------------------------------------------------- #

def run_length_encode_scalar(flags: Sequence[int]) -> List[int]:
    """Reference scalar run-length encoder (the differential-test oracle).

    This is the original per-flag loop; :func:`run_length_encode` must produce
    the identical runs list for every input.  Kept unoptimized on purpose.
    """
    runs: List[int] = []
    current_value = 0
    current_length = 0
    for flag in flags:
        flag = 1 if flag else 0
        if flag == current_value:
            current_length += 1
        else:
            runs.append(current_length)
            current_value = flag
            current_length = 1
    runs.append(current_length)
    return runs


def run_length_encode_mask(mask: np.ndarray) -> np.ndarray:
    """Vectorized run-length encode of a boolean/0-1 array.

    Returns the alternating run lengths as an ``int64`` array — the same list
    :func:`run_length_encode_scalar` produces, computed in a handful of
    whole-array passes: run boundaries are the indices where adjacent flags
    differ (``np.flatnonzero`` over a shifted comparison), run lengths their
    ``np.diff``, plus a leading empty zeros-run when the first slot was a
    detection.
    """
    arr = np.asarray(mask)
    if arr.ndim != 1:
        arr = np.ravel(arr)
    if arr.dtype != bool:
        arr = arr != 0
    n = arr.size
    if n == 0:
        return np.array([0], dtype=np.int64)
    changes = np.flatnonzero(arr[1:] != arr[:-1])
    bounds = np.empty(changes.size + 2, dtype=np.int64)
    bounds[0] = 0
    bounds[1:-1] = changes + 1
    bounds[-1] = n
    runs = np.diff(bounds)
    if arr[0]:
        # The encoding always starts with a zeros-run; emit it empty.
        runs = np.concatenate((np.zeros(1, dtype=np.int64), runs))
    return runs


def run_length_encode_rows(mask2d: np.ndarray) -> List[np.ndarray]:
    """Run-length encode every row of a ``(n_links, n_slots)`` boolean batch.

    One boundary-detection pass over the whole batch (``np.nonzero`` on the
    shifted comparison, results arriving row-major) replaces ``n_links``
    separate :func:`run_length_encode_mask` calls; the per-row runs arrays it
    returns are element-for-element identical to the per-row calls — the lane
    engine's differential tests pin this.
    """
    arr = np.asarray(mask2d)
    if arr.ndim != 2:
        raise ValueError("run_length_encode_rows expects a 2-D mask batch")
    if arr.dtype != bool:
        arr = arr != 0
    n_rows, n_slots = arr.shape
    if n_slots == 0:
        return [np.array([0], dtype=np.int64) for _ in range(n_rows)]
    change_rows, change_cols = np.nonzero(arr[:, 1:] != arr[:, :-1])
    boundaries = change_cols.astype(np.int64) + 1
    per_row = np.bincount(change_rows, minlength=n_rows)
    row_slices = np.split(boundaries, np.cumsum(per_row)[:-1])
    first_col = arr[:, 0]
    encoded: List[np.ndarray] = []
    for row in range(n_rows):
        changes = row_slices[row]
        bounds = np.empty(changes.size + 2, dtype=np.int64)
        bounds[0] = 0
        bounds[1:-1] = changes
        bounds[-1] = n_slots
        runs = np.diff(bounds)
        if first_col[row]:
            # The encoding always starts with a zeros-run; emit it empty.
            runs = np.concatenate((np.zeros(1, dtype=np.int64), runs))
        encoded.append(runs)
    return encoded


def run_length_encode(flags: Union[Sequence[int], np.ndarray]) -> List[int]:
    """Encode a 0/1 detection sequence as alternating run lengths.

    The encoding always starts with the length of an initial run of zeros
    (which may be zero if the first slot was a detection) and then alternates
    (ones-run, zeros-run, ...).  ``sum(runs) == len(flags)`` always holds.

    Vectorized; produces exactly the runs list of
    :func:`run_length_encode_scalar` (the retained oracle).
    """
    return run_length_encode_mask(np.asarray(flags)).tolist()


def _validated_runs(runs: Sequence[int], expected_length: Optional[int]) -> np.ndarray:
    """Convert run lengths to an int64 array, rejecting bad input *cheaply*.

    Validation happens before any output-sized allocation: negative or
    oversized runs, and a run sum that does not match ``expected_length``,
    are all rejected from the (small) runs array alone — a malicious sift
    message can no longer force materialization of an arbitrarily large
    decoded sequence.
    """
    try:
        arr = np.asarray(runs, dtype=np.int64)
    except (OverflowError, TypeError, ValueError):
        raise ValueError("run lengths must be machine-size non-negative integers")
    if arr.ndim != 1:
        raise ValueError("run lengths must be a flat sequence")
    if arr.size and int(arr.min()) < 0:
        raise ValueError("run lengths must be non-negative")
    if expected_length is not None:
        # Reject oversized runs before summing so a handful of huge runs
        # can't overflow the accumulator, then check the exact total.
        if arr.size and int(arr.max()) > expected_length:
            raise ValueError(
                f"run length exceeds expected sequence length {expected_length}"
            )
        total = int(arr.sum())
        if total != expected_length:
            raise ValueError(
                f"decoded length {total} does not match expected {expected_length}"
            )
    return arr


def run_length_decode(runs: Sequence[int], expected_length: Optional[int] = None) -> List[int]:
    """Decode alternating run lengths back into the 0/1 detection sequence.

    Validates ``sum(runs) == expected_length`` (when given) *before*
    materializing the output, so hostile run lists fail fast and cheap.
    """
    arr = _validated_runs(runs, expected_length)
    values = np.arange(arr.size, dtype=np.int64) & 1
    return np.repeat(values, arr).tolist()


# --------------------------------------------------------------------------- #
# The sifting protocol
# --------------------------------------------------------------------------- #

@dataclass
class SiftResult:
    """Both sides' sifted keys plus the statistics later stages need."""

    alice_key: BitString
    bob_key: BitString
    #: Slot indices (into the originating frame batch) of each sifted bit,
    #: as an ``np.ndarray`` — the announcement path never materializes
    #: per-slot Python lists.
    slot_indices: np.ndarray
    n_slots_transmitted: int
    n_detections_reported: int
    sift_message: SiftMessage
    sift_response: SiftResponseMessage

    @property
    def n_sifted(self) -> int:
        return len(self.alice_key)

    @property
    def error_count(self) -> int:
        """Number of positions where Bob's sifted bit differs from Alice's.

        Only the simulation can see this directly; the protocol itself learns
        it during error correction.  Tests and benchmarks use it as ground
        truth.
        """
        return self.alice_key.hamming_distance(self.bob_key)

    @property
    def qber(self) -> float:
        if self.n_sifted == 0:
            return 0.0
        return self.error_count / self.n_sifted

    @property
    def sifted_fraction(self) -> float:
        """Sifted bits per transmitted slot (the paper's 1-in-200 figure)."""
        if self.n_slots_transmitted == 0:
            return 0.0
        return self.n_sifted / self.n_slots_transmitted


class SiftingProtocol:
    """Runs the sift / sift-response transaction for a batch of slots."""

    def __init__(self, frame_id: int = 0):
        self.frame_id = frame_id

    # -- Bob's side ------------------------------------------------------ #

    def build_sift_message(
        self, frame: FrameResult, precomputed_runs: Optional[np.ndarray] = None
    ) -> SiftMessage:
        """Bob reports which slots produced a usable click, and his bases.

        ``precomputed_runs`` lets the lane engine's batched announcement pass
        (:func:`sift_frames`) hand in this frame's row of the batch RLE
        instead of re-encoding; the runs are identical either way.
        """
        usable = frame.usable_clicks
        runs = (
            run_length_encode_mask(usable)
            if precomputed_runs is None
            else precomputed_runs
        )
        detected_bases = frame.bob_basis[usable]
        return SiftMessage(
            frame_id=self.frame_id,
            n_slots=frame.n_slots,
            detection_runs=runs,
            detected_bases=detected_bases,
        )

    def build_naive_sift_message(self, frame: FrameResult) -> NaiveSiftMessage:
        """The uncompressed sift message, for the encoding comparison only."""
        usable = frame.usable_clicks
        indices = np.nonzero(usable)[0].astype(int).tolist()
        detected_bases = frame.bob_basis[usable].astype(int).tolist()
        return NaiveSiftMessage(
            frame_id=self.frame_id,
            n_slots=frame.n_slots,
            detected_slots=indices,
            detected_bases=detected_bases,
        )

    # -- Alice's side ---------------------------------------------------- #

    def build_sift_response(
        self,
        frame: FrameResult,
        sift_message: SiftMessage,
        precomputed_slots: Optional[np.ndarray] = None,
    ) -> SiftResponseMessage:
        """Alice accepts the detections whose reported basis matches hers.

        ``precomputed_slots`` lets a caller that has already decoded the
        message's detection runs (:func:`_decode_detected_slots`) skip the
        second decode; the indices are identical either way.
        """
        if precomputed_slots is None:
            detected_slots = _decode_detected_slots(sift_message, frame.n_slots)
        else:
            detected_slots = precomputed_slots
        if len(detected_slots) != len(sift_message.detected_bases):
            raise ValueError("sift message bases do not match the detection runs")
        accept = np.asarray(frame.alice_basis)[detected_slots].astype(int) == np.asarray(
            sift_message.detected_bases, dtype=int
        )
        return SiftResponseMessage(
            frame_id=self.frame_id, accept_mask=accept.astype(np.uint8)
        )

    # -- Both sides ------------------------------------------------------ #

    def sift(
        self, frame: FrameResult, precomputed_runs: Optional[np.ndarray] = None
    ) -> SiftResult:
        """Run the full transaction and return both sides' sifted keys."""
        sift_message = self.build_sift_message(frame, precomputed_runs)
        detected_slots = _decode_detected_slots(sift_message, frame.n_slots)
        sift_response = self.build_sift_response(
            frame, sift_message, precomputed_slots=detected_slots
        )
        kept = detected_slots[np.asarray(sift_response.accept_mask, dtype=bool)]

        return SiftResult(
            alice_key=_extract_key_bits(frame.alice_value, kept),
            bob_key=_extract_key_bits(frame.bob_value, kept),
            slot_indices=kept,
            n_slots_transmitted=frame.n_slots,
            n_detections_reported=len(detected_slots),
            sift_message=sift_message,
            sift_response=sift_response,
        )


def sift_frames(frames: Sequence[FrameResult], frame_ids: Sequence[int]) -> List[SiftResult]:
    """Sift many equal-length frames with one batched announcement pass.

    This is the lane engine's sifting entry: the usable-click masks of all
    lanes are stacked into one ``(n_links, n_slots)`` batch and run-length
    encoded in a single boundary pass (:func:`run_length_encode_rows`); the
    per-lane transaction then proceeds on the precomputed runs.  Everything
    downstream of the RLE is O(detections), which is where the batch goes
    ragged — each lane keeps its own detection count — so the split happens
    exactly at that boundary.  Results are identical to ``n_links`` separate
    :meth:`SiftingProtocol.sift` calls.
    """
    frames = list(frames)
    frame_ids = list(frame_ids)
    if len(frames) != len(frame_ids):
        raise ValueError("need exactly one frame id per frame")
    if not frames:
        return []
    slot_counts = {frame.n_slots for frame in frames}
    if len(slot_counts) > 1:
        raise ValueError(
            f"frames disagree on n_slots ({sorted(slot_counts)}); a sift batch "
            "must be rectangular"
        )
    usable2 = np.stack([np.asarray(frame.usable_clicks) for frame in frames])
    runs_rows = run_length_encode_rows(usable2)
    return [
        SiftingProtocol(frame_id=frame_id).sift(frame, precomputed_runs=runs)
        for frame, frame_id, runs in zip(frames, frame_ids, runs_rows)
    ]


def _decode_detected_slots(sift_message: SiftMessage, n_slots: int) -> np.ndarray:
    """Slot indices of the reported detections, decoded from the run lengths.

    Runs alternate zeros/ones starting with zeros, so the detections are the
    slots covered by the odd-position runs.  The decode is O(detections):
    each odd run ``[start, start + length)`` expands to a contiguous index
    range via one ``np.repeat`` plus one ``np.arange`` — the n_slots-sized
    flags array is never materialized.  All validation (non-negative runs,
    ``sum(runs) == n_slots``) happens first, on the small runs array.
    """
    runs = _validated_runs(sift_message.detection_runs, n_slots)
    ends = np.cumsum(runs)
    ones_lengths = runs[1::2]
    ones_starts = ends[1::2] - ones_lengths
    nonempty = ones_lengths > 0
    if not nonempty.all():
        ones_lengths = ones_lengths[nonempty]
        ones_starts = ones_starts[nonempty]
    total = int(ones_lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    # Offset each run's start by the detections counted so far; adding a
    # global arange then yields consecutive indices inside every run.
    offsets = np.cumsum(ones_lengths) - ones_lengths
    return np.repeat(ones_starts - offsets, ones_lengths) + np.arange(
        total, dtype=np.int64
    )


def _extract_key_bits(values: np.ndarray, slots: np.ndarray) -> BitString:
    """Gather the bit values at ``slots`` into a packed :class:`BitString`.

    ``np.packbits`` packs most-significant-bit first, matching the
    :meth:`BitString.from_bytes` convention; the zero padding it appends to
    the last byte is sliced off by length.
    """
    n = len(slots)
    if n == 0:
        return BitString()
    picked = np.asarray(values)[slots].astype(np.uint8)
    return BitString.from_bytes(np.packbits(picked).tobytes())[:n]
