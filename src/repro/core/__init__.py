"""The QKD protocol engine (paper section 5) — the system's primary contribution.

The paper describes the protocols as "sub-layers within the QKD protocol
suite ... closer to being pipeline stages" (Fig 9):

    Raw Qframes -> Sifting -> Error Correction -> Entropy Estimation /
    Privacy Amplification -> Authentication -> Distilled key bits

This package implements each stage as an explicit two-party protocol with
message objects crossing a public channel, plus the engine that drives a raw
frame of channel detections all the way to authenticated, distilled key:

* :mod:`repro.core.messages` — the protocol messages of every stage.
* :mod:`repro.core.sifting` — sifting with run-length-encoded sift messages.
* :mod:`repro.core.cascade` — the BBN Cascade variant (64 LFSR-seeded parity
  subsets, divide-and-conquer correction, leakage accounting).
* :mod:`repro.core.entropy_estimation` — the Bennett and Slutsky defense
  functions and the resultant-entropy formula of the paper's Appendix.
* :mod:`repro.core.privacy` — privacy amplification via a linear hash over
  GF(2^n) (sparse primitive polynomial, multiplier, additive polynomial,
  truncation to m bits).
* :mod:`repro.core.authentication` — Wegman-Carter authentication of the
  protocol transcript with a replenished shared-secret pool.
* :mod:`repro.core.keypool` — the distilled-key reservoir consumed by the
  VPN/OPC interface.
* :mod:`repro.core.engine` — the engine binding it all together, assembled
  from the pluggable stages of :mod:`repro.pipeline`.
"""

from repro.core.sifting import SiftingProtocol, SiftResult, run_length_encode, run_length_decode
from repro.core.cascade import CascadeProtocol, CascadeResult, CascadeParameters
from repro.core.entropy_estimation import (
    BennettDefense,
    SlutskyDefense,
    EntropyEstimate,
    EntropyEstimator,
    EntropyInputs,
)
from repro.core.privacy import PrivacyAmplification, PrivacyAmplificationResult
from repro.core.randomness import RandomnessReport, RandomnessTester
from repro.core.authentication import AuthenticatedChannel
from repro.core.keypool import KeyPool, KeyBlock
from repro.core.engine import QKDProtocolEngine, DistillationOutcome, EngineParameters

__all__ = [
    "SiftingProtocol",
    "SiftResult",
    "run_length_encode",
    "run_length_decode",
    "CascadeProtocol",
    "CascadeResult",
    "CascadeParameters",
    "BennettDefense",
    "SlutskyDefense",
    "EntropyEstimate",
    "EntropyEstimator",
    "EntropyInputs",
    "PrivacyAmplification",
    "PrivacyAmplificationResult",
    "RandomnessTester",
    "RandomnessReport",
    "AuthenticatedChannel",
    "KeyPool",
    "KeyBlock",
    "QKDProtocolEngine",
    "DistillationOutcome",
    "EngineParameters",
]
