"""Privacy amplification over GF(2^n) (paper section 5).

"The side that initiates privacy amplification chooses a linear hash function
over the Galois Field GF[2^n] where n is the number of bits as input, rounded
up to a multiple of 32.  He then transmits four things to the other end — the
number of bits m of the shortened result, the (sparse) primitive polynomial of
the Galois field, a multiplier (n bits long), and an m-bit polynomial to add
(i.e. a bit string to exclusive-or) with the product.  Each side then performs
the corresponding hash and truncates the result to m bits to perform privacy
amplification."

This module implements exactly that transaction.  The initiator draws the
multiplier and addend at random, the number of output bits ``m`` comes from
the entropy estimator, and both sides apply the same
``truncate_m(key * multiplier + addend)`` map.  Because the map is linear over
GF(2) and drawn from a universal family, shortening the key by the estimated
leakage (plus margin) reduces Eve's expected knowledge of the result to far
below one bit, per the privacy-amplification theorem the paper relies on.

Keys longer than the largest tabulated field degree are split into blocks,
each hashed in its own field, and the outputs concatenated; the requested
output length is apportioned across blocks proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.messages import PrivacyAmplificationMessage, PublicChannelLog
from repro.mathkit.gf2n import (
    MAX_FIELD_DEGREE,
    PRIMITIVE_POLYNOMIALS,
    GF2nField,
    round_up_to_field_degree,
)
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG


@dataclass
class PrivacyAmplificationResult:
    """The distilled key plus the parameters that produced it."""

    distilled_key: BitString
    messages: List[PrivacyAmplificationMessage]
    input_bits: int
    output_bits: int

    @property
    def compression_ratio(self) -> float:
        """Output bits per input bit."""
        if self.input_bits == 0:
            return 0.0
        return self.output_bits / self.input_bits


class PrivacyAmplification:
    """Runs the privacy-amplification transaction for one corrected block."""

    def __init__(self, rng: Optional[DeterministicRNG] = None, max_block_bits: int = MAX_FIELD_DEGREE):
        if max_block_bits <= 0:
            raise ValueError("block size must be positive")
        self.rng = rng or DeterministicRNG(0)
        self.max_block_bits = min(max_block_bits, MAX_FIELD_DEGREE)

    # ------------------------------------------------------------------ #
    # Initiator side: choose the hash parameters
    # ------------------------------------------------------------------ #

    def build_message(self, input_bits: int, output_bits: int) -> PrivacyAmplificationMessage:
        """Choose random hash parameters for a block of ``input_bits`` bits."""
        if output_bits < 0 or output_bits > input_bits:
            raise ValueError("output length must be in [0, input length]")
        degree = round_up_to_field_degree(input_bits)
        if degree not in PRIMITIVE_POLYNOMIALS:
            raise ValueError(
                f"no tabulated field of degree {degree}; split the key into blocks first"
            )
        field = GF2nField(degree)
        multiplier = self.rng.getrandbits(degree) or 1
        addend = self.rng.getrandbits(output_bits) if output_bits else 0
        return PrivacyAmplificationMessage(
            output_bits=output_bits,
            field_degree=degree,
            polynomial_exponents=field.exponents,
            multiplier=multiplier,
            addend=addend,
        )

    # ------------------------------------------------------------------ #
    # Both sides: apply the hash described by a message
    # ------------------------------------------------------------------ #

    @staticmethod
    def apply_message(key: BitString, message: PrivacyAmplificationMessage) -> BitString:
        """Apply the hash a :class:`PrivacyAmplificationMessage` describes."""
        field = GF2nField(message.field_degree, message.polynomial_exponents)
        if len(key) > field.degree:
            raise ValueError("key longer than the announced field degree")
        return field.hash_bits(key, message.multiplier, message.addend, message.output_bits)

    # ------------------------------------------------------------------ #
    # Whole-block driver
    # ------------------------------------------------------------------ #

    def amplify(
        self,
        key: BitString,
        output_bits: int,
        log: Optional[PublicChannelLog] = None,
    ) -> PrivacyAmplificationResult:
        """Shorten ``key`` to ``output_bits`` distilled bits.

        The key is split into blocks of at most ``max_block_bits``; the output
        length is apportioned across the blocks in proportion to their size,
        so the per-bit compression is uniform.
        """
        if output_bits < 0:
            raise ValueError("output length must be non-negative")
        if output_bits > len(key):
            raise ValueError("cannot amplify to more bits than the input key has")
        log = log if log is not None else PublicChannelLog()

        if output_bits == 0 or len(key) == 0:
            return PrivacyAmplificationResult(
                distilled_key=BitString(),
                messages=[],
                input_bits=len(key),
                output_bits=0,
            )

        blocks = key.chunks(self.max_block_bits)
        messages: List[PrivacyAmplificationMessage] = []
        outputs: List[BitString] = []
        remaining_output = output_bits
        remaining_input = len(key)

        for block in blocks:
            # Apportion the remaining output over the remaining input so the
            # total comes out exactly to ``output_bits``.
            share = round(remaining_output * len(block) / remaining_input) if remaining_input else 0
            share = min(share, len(block), remaining_output)
            remaining_input -= len(block)
            # Give any shortfall to the last block.
            if remaining_input == 0:
                share = min(remaining_output, len(block))
            message = self.build_message(len(block), share)
            log.record(message)
            messages.append(message)
            outputs.append(self.apply_message(block, message))
            remaining_output -= share

        distilled = BitString().concat(*outputs)
        return PrivacyAmplificationResult(
            distilled_key=distilled,
            messages=messages,
            input_bits=len(key),
            output_bits=len(distilled),
        )
