"""Binary wire codec primitives for the hot protocol messages.

The sifting and Cascade transactions dominate the public-channel byte volume:
a 500k-slot frame's run-length indication is a few thousand small integers,
and every Cascade round announces 64 seeds and 64 single-bit parities.  The
JSON reference encoding (``repro.core.messages._encode_json_payload``) spends
5-10 bytes per value on decimal digits and punctuation; the binary codec here
packs the same content about an order of magnitude tighter, which shrinks the
Wegman-Carter transcripts (and therefore the per-block Toeplitz chunk count)
proportionally.

Layout rules (documented for interoperability in ``docs/API.md``):

* every binary message starts with a 1-byte kind tag — distinct from ``{``
  (0x7B), so binary and JSON messages can coexist in one transcript and be
  told apart from their first byte;
* **kind-tag allocation policy**: the kind byte is a single flat namespace
  shared by every subsystem that reuses these primitives, and ranges are
  claimed here before any kind inside them is defined, so two subsystems
  can never collide.  Current allocation: ``0x01..0x06`` the distillation
  transcript messages below; ``0x07..0x1F`` reserved for future transcript
  kinds; ``0x20..0x3F`` the networked key-delivery protocol
  (:mod:`repro.netkms`, which also carries an explicit version byte for
  negotiated evolution); ``0x40..0x7A`` unallocated; ``0x7B`` is JSON's
  ``{``; ``0x7C..0xFF`` unallocated.  A new subsystem claims a contiguous
  sub-range by extending this list (and the constants below) in the same
  change that introduces its first message kind;
* fixed-width header fields are **little-endian** (``<u32`` / ``<i32``);
* variable-length non-negative integers use **LEB128 varints**: 7 value bits
  per byte, least-significant group first, high bit set on every byte except
  the last;
* bit sequences (bases, accept masks, parities) are packed 8 per byte,
  most-significant bit first (``np.packbits`` order), zero-padded at the end.

Everything here is vectorized: encoding or decoding an n-value varint block
costs a handful of numpy passes (one per varint byte position, at most 10),
never a Python-level loop over values.
"""

from __future__ import annotations

import struct
from typing import Sequence, Tuple, Union

import numpy as np

#: Message kind tags (first byte of every binary encoding).
KIND_SIFT = 0x01
KIND_SIFT_RESPONSE = 0x02
KIND_CASCADE_SUBSETS = 0x03
KIND_CASCADE_PARITIES = 0x04
KIND_CASCADE_BISECT = 0x05
KIND_CASCADE_BISECT_REPLY = 0x06

#: Kind ranges claimed by other subsystems (see the allocation policy in the
#: module docstring).  The transcript codec owns 0x01..0x1F; the networked
#: key-delivery protocol (repro.netkms) defines its kinds inside
#: [KIND_NETKMS_FIRST, KIND_NETKMS_LAST] and nowhere else.
KIND_NETKMS_FIRST = 0x20
KIND_NETKMS_LAST = 0x3F

_U32_MAX = (1 << 32) - 1


class WireDecodeError(ValueError):
    """Raised when a byte string is not a valid binary protocol message."""


# --------------------------------------------------------------------------- #
# Varints (LEB128), vectorized
# --------------------------------------------------------------------------- #

#: Below this many values the numpy fan-out costs more than a Python loop
#: (bisect queries encode a few hundred tiny deltas at a time).
_SCALAR_VARINT_CUTOFF = 256


def _encode_varints_scalar(values) -> bytes:
    """Plain-loop varint encoder for short sequences."""
    out = bytearray()
    for value in values:
        as_int = int(value)
        if as_int != value:
            raise ValueError("varints encode integers, not fractional values")
        value = as_int
        if value < 0 or value >= (1 << 64):
            raise ValueError("varints encode non-negative 64-bit integers only")
        while value >= 0x80:
            out.append((value & 0x7F) | 0x80)
            value >>= 7
        out.append(value)
    return bytes(out)


def encode_varints(values: Union[Sequence[int], np.ndarray]) -> bytes:
    """Encode a sequence of non-negative integers as concatenated varints."""
    if not isinstance(values, np.ndarray) and len(values) < _SCALAR_VARINT_CUTOFF:
        return _encode_varints_scalar(values)
    arr = values if isinstance(values, np.ndarray) else np.asarray(values)
    if arr.size == 0:
        return b""
    if arr.size < _SCALAR_VARINT_CUTOFF:
        return _encode_varints_scalar(arr.tolist())
    if arr.dtype == object or not np.issubdtype(arr.dtype, np.integer):
        # Mixed / oversized Python ints (or a lossy float promotion): go back
        # to the original values and validate each explicitly.
        source = values if not isinstance(values, np.ndarray) else np.ravel(arr)
        converted = [int(v) for v in source]
        if any(c != v for c, v in zip(converted, source)):
            raise ValueError("varints encode integers, not fractional values")
        if any(v < 0 or v >= (1 << 64) for v in converted):
            raise ValueError("varints encode non-negative 64-bit integers only")
        arr = np.array(converted, dtype=np.uint64)
    elif arr.size and int(arr.min()) < 0:
        raise ValueError("varints encode non-negative integers only")
    arr = arr.astype(np.uint64, copy=False)
    max_value = int(arr.max())
    if max_value < 0x80:
        # Every value fits one varint byte: the encoding is the byte string.
        return arr.astype(np.uint8).tobytes()
    # Bytes per value: 1 + one extra for every 7-bit group above the first.
    nbytes = np.ones(arr.shape, dtype=np.intp)
    for shift in range(7, max_value.bit_length(), 7):
        nbytes += arr >= np.uint64(1 << shift)
    total = int(nbytes.sum())
    out = np.zeros(total, dtype=np.uint8)
    ends = np.cumsum(nbytes)
    starts = ends - nbytes
    for j in range(int(nbytes.max())):
        sel = nbytes > j
        chunk = (arr[sel] >> np.uint64(7 * j)) & np.uint64(0x7F)
        cont = (nbytes[sel] - 1 > j).astype(np.uint8) << 7
        out[starts[sel] + j] = chunk.astype(np.uint8) | cont
    return out.tobytes()


def decode_varints(data: bytes, expected_count: int) -> np.ndarray:
    """Decode ``expected_count`` concatenated varints spanning all of ``data``.

    Returns a ``uint64`` array.  Raises :class:`WireDecodeError` on a
    truncated final varint, a wrong count, an over-long (> 10 byte) varint,
    or a 10-byte varint overflowing 64 bits — all detected *before* any
    value-sized allocation, so a hostile message cannot force large work.
    """
    buf = np.frombuffer(data, dtype=np.uint8)
    if buf.size == 0:
        if expected_count != 0:
            raise WireDecodeError(
                f"expected {expected_count} varints, got empty payload"
            )
        return np.zeros(0, dtype=np.uint64)
    ends = np.flatnonzero(buf < 0x80)
    if ends.size == 0 or ends[-1] != buf.size - 1:
        raise WireDecodeError("truncated varint at end of payload")
    if ends.size != expected_count:
        raise WireDecodeError(
            f"expected {expected_count} varints, payload holds {ends.size}"
        )
    starts = np.empty_like(ends)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    max_len = int(lengths.max())
    if max_len > 10:
        raise WireDecodeError("varint longer than 10 bytes (value > 64 bits)")
    values = np.zeros(ends.size, dtype=np.uint64)
    for j in range(max_len):
        sel = lengths > j
        group = buf[starts[sel] + j].astype(np.uint64) & np.uint64(0x7F)
        if 7 * j >= 64 or (j == 9 and int(group.max(initial=0)) > 1):
            raise WireDecodeError("varint overflows 64 bits")
        values[sel] |= group << np.uint64(7 * j)
    return values


# --------------------------------------------------------------------------- #
# Bitmaps (np.packbits order: MSB of each byte first)
# --------------------------------------------------------------------------- #

def pack_bitmap(bits: Union[Sequence[int], np.ndarray]) -> bytes:
    """Pack a 0/1 sequence 8 per byte, MSB first, zero-padded at the end."""
    arr = np.asarray(bits)
    if arr.size == 0:
        return b""
    if arr.dtype != bool:
        arr = arr != 0
    return np.packbits(arr).tobytes()


def unpack_bitmap(data: bytes, count: int) -> np.ndarray:
    """Unpack ``count`` bits packed by :func:`pack_bitmap` into a uint8 array."""
    expected = (count + 7) // 8
    if len(data) != expected:
        raise WireDecodeError(
            f"bitmap for {count} bits must be {expected} bytes, got {len(data)}"
        )
    if count == 0:
        return np.zeros(0, dtype=np.uint8)
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8), count=count)
    return bits


def bitmap_size(count: int) -> int:
    """Bytes occupied by a ``count``-bit packed bitmap."""
    return (count + 7) // 8


# --------------------------------------------------------------------------- #
# Delta coding for ascending index lists (Cascade bisect queries)
# --------------------------------------------------------------------------- #

def encode_ascending_indices(indices: Union[Sequence[int], np.ndarray]) -> bytes:
    """Delta-plus-varint encode a non-decreasing index sequence.

    Cascade bisect queries carry the slot indices of the queried half-range,
    which are always ascending; the deltas are tiny, so this is 1-2 bytes per
    index.  Raises ``ValueError`` if the sequence is not non-decreasing
    (callers fall back to the JSON reference encoding in that case).
    """
    if not isinstance(indices, np.ndarray) and len(indices) < _SCALAR_VARINT_CUTOFF:
        deltas = []
        previous = 0
        for index in indices:
            index = int(index)
            if index < previous or index < 0:
                raise ValueError("indices must be non-negative and non-decreasing")
            deltas.append(index - previous)
            previous = index
        return _encode_varints_scalar(deltas)
    arr = np.asarray(indices, dtype=np.int64)
    if arr.size == 0:
        return b""
    deltas = np.empty_like(arr)
    deltas[0] = arr[0]
    np.subtract(arr[1:], arr[:-1], out=deltas[1:])
    if arr[0] < 0 or (arr.size > 1 and int(deltas[1:].min()) < 0):
        raise ValueError("indices must be non-negative and non-decreasing")
    return encode_varints(deltas)


def decode_ascending_indices(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`encode_ascending_indices` (returns an int64 array)."""
    deltas = decode_varints(data, count)
    if count and int(deltas.max()) > _U32_MAX:
        raise WireDecodeError("index delta out of range")
    return np.cumsum(deltas.astype(np.int64))


# --------------------------------------------------------------------------- #
# Header helpers
# --------------------------------------------------------------------------- #

def pack_header(kind: int, fmt: str, *fields: int) -> bytes:
    """One kind byte followed by fixed little-endian header fields.

    ``fmt`` is a :mod:`struct` format without byte-order prefix, e.g.
    ``"IIII"`` for four ``<u32`` fields.
    """
    try:
        return bytes([kind]) + struct.pack("<" + fmt, *fields)
    except struct.error as exc:
        raise ValueError(f"header field out of range: {exc}") from None


def unpack_header(data: bytes, kind: int, fmt: str) -> Tuple[Tuple[int, ...], bytes]:
    """Validate the kind byte, unpack the header, return (fields, payload)."""
    size = struct.calcsize("<" + fmt)
    if len(data) < 1 + size:
        raise WireDecodeError("message shorter than its fixed header")
    if data[0] != kind:
        raise WireDecodeError(f"expected kind 0x{kind:02x}, got 0x{data[0]:02x}")
    return struct.unpack_from("<" + fmt, data, 1), data[1 + size :]
