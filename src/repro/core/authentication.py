"""Authentication of the QKD protocol traffic (paper section 5).

"Authentication must be performed on an ongoing basis for all key management
traffic, since Eve may insert herself into the conversation between Alice and
Bob at any stage."  The approach is the one sketched in the original BB84
paper: Alice and Bob pre-share a small secret key; every batch of protocol
messages is tagged with a Wegman-Carter universal hash selected by bits from
that shared pool; and "a small number" of each batch of freshly distilled QKD
bits is fed back to replenish the pool, so the system can keep authenticating
indefinitely — unless an adversary manages to force the pool to exhaustion
(the denial-of-service concern the paper raises, reproduced by the E11
benchmark).

:class:`AuthenticatedChannel` wraps a protocol transcript at one endpoint.
Two channels built from the same pre-shared secret verify each other's tags;
a man-in-the-middle who alters any message causes verification to fail with
overwhelming probability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import AuthenticationTagMessage, PublicChannelLog
from repro.crypto.wegman_carter import (
    AuthenticationError,
    SharedSecretPool,
    WegmanCarterAuthenticator,
)
from repro.util.bits import BitString


@dataclass
class AuthenticationStatistics:
    """Bookkeeping used by the key-consumption benchmarks."""

    batches_tagged: int = 0
    batches_verified: int = 0
    verification_failures: int = 0
    secret_bits_consumed: int = 0
    secret_bits_replenished: int = 0

    @property
    def net_secret_bits(self) -> int:
        """Replenished minus consumed; negative means the pool is draining."""
        return self.secret_bits_replenished - self.secret_bits_consumed


class AuthenticatedChannel:
    """Tags and verifies batches of protocol messages at one endpoint."""

    #: Default size of the pre-positioned shared secret, in bits.  The paper
    #: only requires it be "small"; 4 kbit is enough to bootstrap the first
    #: few protocol batches before QKD replenishment takes over.
    DEFAULT_PRESHARED_BITS = 4096

    def __init__(
        self,
        preshared_secret: BitString,
        tag_bits: int = WegmanCarterAuthenticator.DEFAULT_TAG_BITS,
    ):
        self.pool = SharedSecretPool(preshared_secret)
        self.authenticator = WegmanCarterAuthenticator(self.pool, tag_bits=tag_bits)
        self.statistics = AuthenticationStatistics()
        self.tag_bits = tag_bits

    # ------------------------------------------------------------------ #

    @classmethod
    def paired(cls, preshared_secret: BitString, tag_bits: int = 32):
        """Build the two endpoints of an authenticated public channel.

        Both are constructed from identical pre-shared bits, so their pools
        (and therefore their hash selections and pads) stay in lock step.
        """
        return cls(preshared_secret, tag_bits), cls(preshared_secret, tag_bits)

    # ------------------------------------------------------------------ #
    # Tagging and verification
    # ------------------------------------------------------------------ #

    def tag_transcript(self, log: PublicChannelLog) -> AuthenticationTagMessage:
        """Produce a tag covering every message currently in the transcript."""
        return self.tag_payload(log.transcript_bytes(), covered_messages=len(log))

    def tag_payload(
        self, payload: bytes, covered_messages: int
    ) -> AuthenticationTagMessage:
        """Tag an already-serialized transcript (callers that tag and verify
        the same log can serialize it once and reuse the bytes)."""
        before = self.pool.consumed_bits
        tag = self.authenticator.tag(payload)
        self.statistics.batches_tagged += 1
        self.statistics.secret_bits_consumed += self.pool.consumed_bits - before
        return AuthenticationTagMessage(
            covered_messages=covered_messages, tag_bits=tag.to_list()
        )

    def verify_transcript(
        self, log: PublicChannelLog, tag_message: AuthenticationTagMessage
    ) -> None:
        """Verify a peer's tag over the same transcript.

        Raises :class:`AuthenticationError` if the transcript was tampered
        with (or the peer does not hold the same secret pool — i.e. is Eve).
        """
        self.verify_payload(log.transcript_bytes(), tag_message)

    def verify_payload(
        self, payload: bytes, tag_message: AuthenticationTagMessage
    ) -> None:
        """Verify a peer's tag over an already-serialized transcript."""
        before = self.pool.consumed_bits
        self.statistics.batches_verified += 1
        try:
            self.authenticator.verify(payload, tag_message.tag)
        except AuthenticationError:
            self.statistics.verification_failures += 1
            raise
        finally:
            self.statistics.secret_bits_consumed += self.pool.consumed_bits - before

    # ------------------------------------------------------------------ #
    # Pool replenishment
    # ------------------------------------------------------------------ #

    def replenish(self, fresh_bits: BitString) -> None:
        """Feed a slice of freshly distilled key back into the secret pool."""
        self.pool.add(fresh_bits)
        self.statistics.secret_bits_replenished += len(fresh_bits)

    @property
    def available_secret_bits(self) -> int:
        return self.pool.available_bits

    def bits_needed_per_batch(self) -> int:
        """Secret bits a tag/verify round trip consumes at each endpoint.

        One tag and one verification each consume ``tag_bits`` of pad, so a
        symmetric exchange (both parties authenticate their own traffic)
        costs ``2 * tag_bits`` per endpoint per batch.  The engine replenishes
        at least this much from every distilled block, keeping the pool from
        draining in steady state.
        """
        return 2 * self.tag_bits

    def __repr__(self) -> str:
        return (
            f"AuthenticatedChannel(available={self.available_secret_bits} bits, "
            f"tagged={self.statistics.batches_tagged}, "
            f"failures={self.statistics.verification_failures})"
        )
