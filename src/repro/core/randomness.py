"""Randomness testing of the raw QKD bits (the paper's ``r`` term).

Section 6 lists, among the components of the entropy estimate, "an estimate of
the information Eve might possess due to non-randomness in the raw QKD bits
(detector bias, for example)", and notes that in the fielded system "the
non-randomness measure is only a placeholder at the moment, until randomness
testing is put into the system.  We assume that this testing will produce a
measure in the form of a number of bits by which to shorten the string."

This module supplies that missing piece: a small battery of classical
randomness tests (monobit balance, runs, block frequency, serial
autocorrelation) applied to the sifted bits, converted into exactly the form
the entropy estimator expects — a number of bits by which to shorten the
block.  The conversion is deliberately conservative and simple: each test
estimates how many bits of entropy per bit are *missing* given the observed
statistic, the battery takes the worst case, and the result is rounded up.

A detector whose D1 fires slightly more often than D0 (the paper's own
example) shows up directly in the monobit test; correlated afterpulsing shows
up in the runs and autocorrelation tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.mathkit.entropy import binary_entropy
from repro.util.bits import BitString


@dataclass
class RandomnessTestResult:
    """Outcome of one test: a statistic and the entropy defect it implies."""

    name: str
    statistic: float
    #: Estimated missing entropy per bit (0 = perfectly random, 1 = constant).
    entropy_defect_per_bit: float
    passed: bool


@dataclass
class RandomnessReport:
    """The battery's verdict on one block of raw/sifted bits."""

    block_bits: int
    results: List[RandomnessTestResult]

    @property
    def worst_defect_per_bit(self) -> float:
        if not self.results:
            return 0.0
        return max(result.entropy_defect_per_bit for result in self.results)

    @property
    def non_randomness_bits(self) -> int:
        """The ``r`` of the entropy estimate: bits to shorten the block by."""
        return int(math.ceil(self.worst_defect_per_bit * self.block_bits))

    @property
    def all_passed(self) -> bool:
        return all(result.passed for result in self.results)


class RandomnessTester:
    """A small battery of bias/correlation tests over a bit block."""

    def __init__(self, significance_sigmas: float = 3.0, block_size: int = 128):
        if significance_sigmas <= 0:
            raise ValueError("significance threshold must be positive")
        if block_size <= 1:
            raise ValueError("block size must exceed one bit")
        self.significance_sigmas = significance_sigmas
        self.block_size = block_size

    # ------------------------------------------------------------------ #
    # Individual tests
    # ------------------------------------------------------------------ #

    def monobit(self, bits: BitString) -> RandomnessTestResult:
        """Overall 0/1 balance; a biased detector pair fails here first."""
        n = len(bits)
        if n == 0:
            return RandomnessTestResult("monobit", 0.0, 0.0, True)
        ones_fraction = bits.balance()
        sigma = 0.5 / math.sqrt(n)
        deviation_sigmas = abs(ones_fraction - 0.5) / sigma if sigma else 0.0
        passed = deviation_sigmas <= self.significance_sigmas
        defect = 0.0
        if not passed:
            defect = 1.0 - binary_entropy(min(max(ones_fraction, 1e-12), 1 - 1e-12))
        return RandomnessTestResult("monobit", ones_fraction, defect, passed)

    def runs(self, bits: BitString) -> RandomnessTestResult:
        """Number of runs vs the expectation for an unbiased, uncorrelated source."""
        n = len(bits)
        if n < 2:
            return RandomnessTestResult("runs", 0.0, 0.0, True)
        observed_runs = len(bits.runs())
        p = bits.balance()
        expected = 1 + 2 * n * p * (1 - p)
        variance = max(2 * n * p * (1 - p) * (2 * p * (1 - p) - 1 / n), 1e-12)
        deviation_sigmas = abs(observed_runs - expected) / math.sqrt(variance)
        passed = deviation_sigmas <= self.significance_sigmas
        defect = 0.0
        if not passed:
            # Convert the run-count excess/deficit into a per-bit correlation
            # and from there into a (first-order Markov) entropy defect.
            correlation = max(min(1.0 - observed_runs / max(expected, 1e-12), 0.999), -0.999)
            transition = 0.5 * (1.0 + abs(correlation))
            defect = 1.0 - binary_entropy(min(max(transition, 1e-12), 1 - 1e-12))
        return RandomnessTestResult("runs", float(observed_runs), defect, passed)

    def block_frequency(self, bits: BitString) -> RandomnessTestResult:
        """Per-block balance: catches slow drift in detector bias."""
        blocks = [b for b in bits.chunks(self.block_size) if len(b) == self.block_size]
        if not blocks:
            return RandomnessTestResult("block-frequency", 0.0, 0.0, True)
        fractions = [block.balance() for block in blocks]
        chi_squared = 4.0 * self.block_size * sum((p - 0.5) ** 2 for p in fractions)
        degrees = len(blocks)
        # A chi-square variable with k degrees of freedom has mean k and
        # variance 2k; flag the block when it exceeds the significance band.
        threshold = degrees + self.significance_sigmas * math.sqrt(2.0 * degrees)
        passed = chi_squared <= threshold
        defect = 0.0
        if not passed:
            worst = max(fractions, key=lambda p: abs(p - 0.5))
            per_bit = 1.0 - binary_entropy(min(max(worst, 1e-12), 1 - 1e-12))
            # Only the biased blocks are discounted, not the whole string.
            defect = per_bit * self.block_size / len(bits)
        return RandomnessTestResult("block-frequency", chi_squared, defect, passed)

    def autocorrelation(self, bits: BitString, lag: int = 1) -> RandomnessTestResult:
        """Lag-``lag`` serial correlation: catches afterpulse-style memory."""
        n = len(bits)
        if n <= lag:
            return RandomnessTestResult("autocorrelation", 0.0, 0.0, True)
        matches = sum(1 for i in range(n - lag) if bits[i] == bits[i + lag])
        fraction = matches / (n - lag)
        sigma = 0.5 / math.sqrt(n - lag)
        deviation_sigmas = abs(fraction - 0.5) / sigma if sigma else 0.0
        passed = deviation_sigmas <= self.significance_sigmas
        defect = 0.0
        if not passed:
            defect = 1.0 - binary_entropy(min(max(fraction, 1e-12), 1 - 1e-12))
        return RandomnessTestResult(f"autocorrelation-lag{lag}", fraction, defect, passed)

    # ------------------------------------------------------------------ #

    def assess(self, bits: BitString) -> RandomnessReport:
        """Run the whole battery and produce the ``r`` measure."""
        results = [
            self.monobit(bits),
            self.runs(bits),
            self.block_frequency(bits),
            self.autocorrelation(bits, lag=1),
            self.autocorrelation(bits, lag=2),
        ]
        return RandomnessReport(block_bits=len(bits), results=results)
