"""Error correction: the BBN variant of the Cascade protocol (paper section 5).

"Our first approach for error correction is a novel variant of the Cascade
protocol and algorithms.  The protocol is adaptive, in that it will not
disclose too many bits if the number of errors is low, but it will accurately
detect and correct a large number of errors (up to some limit) even if that
number is well above the historical average."

The mechanics implemented here follow the paper's description directly:

* Each round the initiator (Alice, whose key is the reference) defines a
  number of subsets (64 by default) of the sifted bits.  The subsets are
  pseudo-random bit strings expanded from a Linear-Feedback Shift Register and
  are identified on the wire only by a 32-bit LFSR seed.
* The initiator announces the subsets' parities; the responder replies with
  its own parities.  Any subset whose parities disagree contains an odd
  number of errors, and a divide-and-conquer (binary search) exchange over
  that subset locates and fixes one error bit.
* "Once an error bit has been found and fixed, both sides inspect their
  records of subsets and subranges, and flip the recorded parity of those
  that contained that bit.  This will clear up some discrepancies but may
  introduce other new ones, and so the process continues." — i.e. the
  correction cascades through earlier rounds' subsets.
* Every parity that crosses the public channel "must be taken as known to
  Eve", so the protocol records the number disclosed; privacy amplification
  later removes (at least) that many bits.

The result object reports both the raw number of disclosed parities ``d`` —
the quantity the paper's entropy formula subtracts — and the number of
*linearly independent* parities, which is the information-theoretically tight
figure and is useful for analysing the protocol's efficiency against the
Shannon limit ``n·h(e)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.messages import (
    CascadeBisectQuery,
    CascadeBisectReply,
    CascadeParityReply,
    CascadeSubsetAnnouncement,
    PublicChannelLog,
)
from repro.mathkit.gf2 import IncrementalGF2Rank
from repro.mathkit.lfsr import lfsr_subset_masks
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG


@dataclass(frozen=True)
class CascadeParameters:
    """Tunable knobs of the BBN Cascade variant."""

    #: Number of pseudo-random parity subsets announced per round ("currently 64").
    subsets_per_round: int = 64
    #: Number of announcement rounds.  Later rounds use fresh subsets and
    #: catch error patterns that earlier rounds saw only in even multiples.
    rounds: int = 4
    #: Extra random-subset parities exchanged at the end purely to confirm the
    #: keys now agree; they are also charged as disclosed bits.
    confirmation_parities: int = 16
    #: Fraction of key positions each pseudo-random subset includes.
    subset_density: float = 0.5
    #: Whether to run an initial pass over contiguous blocks ("subranges")
    #: before the pseudo-random subset rounds.  The adaptive block size keeps
    #: the bisection cost per error low when the error rate is high, which is
    #: what makes the whole protocol "adaptive" in the paper's sense.
    block_first_pass: bool = True
    #: First-pass block size is ``block_factor / error_rate`` (Brassard-Salvail
    #: tuning), clamped to ``[min_block_size, max_block_size]``.
    block_factor: float = 0.73
    min_block_size: int = 4
    max_block_size: int = 64
    #: Prior estimate of the error rate used to size the first-pass blocks
    #: when the caller does not pass a better hint.
    default_error_rate_hint: float = 0.05

    def __post_init__(self) -> None:
        if self.subsets_per_round <= 0:
            raise ValueError("subsets per round must be positive")
        if self.rounds <= 0:
            raise ValueError("round count must be positive")
        if self.confirmation_parities < 0:
            raise ValueError("confirmation parity count must be non-negative")
        if not 0.0 < self.subset_density <= 1.0:
            raise ValueError("subset density must be in (0, 1]")
        if self.block_factor <= 0:
            raise ValueError("block factor must be positive")
        if not 0 < self.min_block_size <= self.max_block_size:
            raise ValueError("block size bounds must satisfy 0 < min <= max")
        if not 0.0 < self.default_error_rate_hint < 0.5:
            raise ValueError("default error rate hint must be in (0, 0.5)")

    def first_pass_block_size(self, error_rate_hint: float) -> int:
        """The contiguous block size used by the first pass."""
        rate = max(error_rate_hint, 1e-4)
        size = int(round(self.block_factor / rate))
        return max(self.min_block_size, min(self.max_block_size, size))


@dataclass
class CascadeResult:
    """Outcome of reconciling one sifted block."""

    corrected_key: BitString
    errors_corrected: int
    disclosed_parities: int
    independent_parities: int
    rounds_used: int
    bisection_queries: int
    confirmed: bool
    #: True when the simulation's ground truth says the corrected key equals
    #: the reference key (only the tests can know this; the protocol itself
    #: relies on ``confirmed``).
    matches_reference: Optional[bool] = None
    message_log: PublicChannelLog = field(default_factory=PublicChannelLog)

    @property
    def leakage_fraction(self) -> float:
        """Disclosed parity bits per key bit."""
        if len(self.corrected_key) == 0:
            return 0.0
        return self.disclosed_parities / len(self.corrected_key)


class _SubsetRecord:
    """One announced parity subset, as both sides record it.

    The subset lives in two forms: ``indices`` (ascending positions, the wire
    representation Cascade bisects over) and ``mask`` (the same positions as
    an LSB-first bit mask, bit ``i`` = key position ``i``), so parity checks
    are a word-wide AND-popcount instead of a per-index walk.  ``prefix`` is
    built lazily on first bisection: ``prefix[j]`` masks ``indices[:j]``, so
    any contiguous sub-segment's mask is one XOR of two prefixes.
    """

    __slots__ = ("seed", "indices", "mask", "prefix", "reference_parity", "working_parity")

    def __init__(self, seed: int, indices: List[int], mask: int, reference_parity: int, working_parity: int):
        self.seed = seed
        self.indices = indices
        self.mask = mask
        self.prefix: Optional[List[int]] = None
        self.reference_parity = reference_parity
        self.working_parity = working_parity

    @property
    def mismatched(self) -> bool:
        return self.reference_parity != self.working_parity

    def segment_mask(self, lo: int, hi: int) -> int:
        """Mask of ``indices[lo:hi]`` via the lazily built prefix masks."""
        if self.prefix is None:
            positions = (
                self.indices.tolist()
                if isinstance(self.indices, np.ndarray)
                else self.indices
            )
            prefix = [0] * (len(positions) + 1)
            accumulated = 0
            for position, index in enumerate(positions):
                accumulated |= 1 << index
                prefix[position + 1] = accumulated
            self.prefix = prefix
        return self.prefix[hi] ^ self.prefix[lo]


class _PackedParityBatch:
    """All of one round's subset parities as a single packed-mask operation.

    The key (LSB-first packed, bit ``i`` = position ``i``) is replicated into
    byte-aligned lanes, one lane per subset; a round's masks are packed into
    the same lane layout, so every announced parity of the round comes out of
    **one** big-int AND followed by a per-lane popcount — instead of one
    independent mask walk per subset.  The replica is built once per key (one
    ``bytes`` multiply) and cached per lane count, since Cascade asks for the
    same 64-lane layout every round.
    """

    __slots__ = ("stride", "_key_bytes", "_replicas")

    def __init__(self, key_lsb: int, n_bits: int):
        self.stride = (n_bits + 7) // 8
        self._key_bytes = key_lsb.to_bytes(self.stride, "little")
        self._replicas: dict = {}

    def parities(self, masks: List[int]) -> List[int]:
        """``[(key & mask).bit_count() & 1 for mask in masks]``, batched."""
        lanes = len(masks)
        if lanes == 0:
            return []
        stride = self.stride
        replica = self._replicas.get(lanes)
        if replica is None:
            replica = int.from_bytes(self._key_bytes * lanes, "little")
            self._replicas[lanes] = replica
        packed_masks = int.from_bytes(
            b"".join(mask.to_bytes(stride, "little") for mask in masks), "little"
        )
        anded = (packed_masks & replica).to_bytes(lanes * stride, "little")
        return [
            int.from_bytes(anded[lane * stride : (lane + 1) * stride], "little").bit_count() & 1
            for lane in range(lanes)
        ]


class CascadeProtocol:
    """Reconciles the responder's sifted key against the initiator's."""

    def __init__(
        self,
        parameters: Optional[CascadeParameters] = None,
        rng: Optional[DeterministicRNG] = None,
    ):
        self.parameters = parameters or CascadeParameters()
        self.rng = rng or DeterministicRNG(0)

    # ------------------------------------------------------------------ #

    def reconcile(
        self,
        reference_key: BitString,
        working_key: BitString,
        log: Optional[PublicChannelLog] = None,
        error_rate_hint: Optional[float] = None,
    ) -> CascadeResult:
        """Correct ``working_key`` (Bob's) to match ``reference_key`` (Alice's).

        The two keys must have equal length.  ``error_rate_hint`` (typically
        the running QBER estimate the engine maintains) sizes the first-pass
        blocks; when omitted the parameter default is used.  Returns a
        :class:`CascadeResult`; the corrected key is a new ``BitString`` and
        the inputs are left untouched.
        """
        if len(reference_key) != len(working_key):
            raise ValueError("sifted keys must have the same length")
        n = len(reference_key)
        log = log if log is not None else PublicChannelLog()
        params = self.parameters

        if n == 0:
            return CascadeResult(
                corrected_key=BitString(),
                errors_corrected=0,
                disclosed_parities=0,
                independent_parities=0,
                rounds_used=0,
                bisection_queries=0,
                confirmed=True,
                matches_reference=True,
                message_log=log,
            )

        # Both keys and every subset live as LSB-first packed words (bit i =
        # key position i) so parity checks are AND-plus-popcount.
        working = working_key.to_int_lsb()
        reference = reference_key.to_int_lsb()  # only parities of it are disclosed
        # Alice's side of each round's announcement: all 64 reference parities
        # in one packed AND over byte-aligned lanes.  (Bob's replies stay
        # per-mask: his key keeps changing as errors are fixed, so a replica
        # would have to be rebuilt every round and win nothing.)
        reference_batch = _PackedParityBatch(reference, n)

        disclosed = 0
        bisections = 0
        errors_corrected = 0
        rank_tracker = IncrementalGF2Rank(columns=n)
        records: List[_SubsetRecord] = []
        # Numpy mirror of the records' parities, active while a round's
        # mismatches are being worked: the "find the first mismatched subset"
        # scan is one vectorized compare instead of a Python walk per fix.
        parity_mirror: Optional[np.ndarray] = None

        def disclose_mask_parity(mask: int) -> int:
            """Alice discloses the reference parity of a subset mask."""
            nonlocal disclosed
            disclosed += 1
            rank_tracker.add(mask)
            return (reference & mask).bit_count() & 1

        def working_parity(mask: int) -> int:
            return (working & mask).bit_count() & 1

        def fix_bit(index: int) -> None:
            """Flip the located error bit and update every recorded parity."""
            nonlocal working, errors_corrected
            index = int(index)
            working ^= 1 << index
            errors_corrected += 1
            for position, record in enumerate(records):
                if (record.mask >> index) & 1:
                    record.working_parity ^= 1
                    if parity_mirror is not None:
                        parity_mirror[position] ^= 1

        def bisect(record: _SubsetRecord, round_index: int, subset_index: int) -> None:
            """Divide-and-conquer search for one error inside a mismatched subset.

            The live segment is always ``record.indices[lo:hi]``, so its mask
            comes from the record's prefix masks in one XOR per level.
            """
            nonlocal disclosed, bisections
            lo, hi = 0, len(record.indices)
            while hi - lo > 1:
                mid = lo + (hi - lo) // 2
                log.record(
                    CascadeBisectQuery(
                        round_index=round_index,
                        subset_index=subset_index,
                        # An O(1) array view; the binary codec delta-encodes
                        # it only when the transcript is serialized.
                        indices=record.indices[lo:mid],
                    )
                )
                half_mask = record.segment_mask(lo, mid)
                reference_parity = disclose_mask_parity(half_mask)
                bisections += 1
                log.record(
                    CascadeBisectReply(
                        round_index=round_index,
                        subset_index=subset_index,
                        parity=reference_parity,
                    )
                )
                if working_parity(half_mask) != reference_parity:
                    hi = mid
                else:
                    lo = mid
            fix_bit(record.indices[lo])

        def work_all_mismatches(round_index: int) -> None:
            """Bisect every mismatched record until all recorded parities agree.

            Always works the lowest-index mismatched record first (the same
            order the per-record scan used), but finds it with one vectorized
            compare over the parity mirror, which ``fix_bit`` keeps current.
            """
            nonlocal parity_mirror
            if not records:
                return
            count = len(records)
            reference_parities = np.fromiter(
                (record.reference_parity for record in records), np.uint8, count
            )
            parity_mirror = np.fromiter(
                (record.working_parity for record in records), np.uint8, count
            )
            try:
                while True:
                    mismatched = np.flatnonzero(parity_mirror != reference_parities)
                    if mismatched.size == 0:
                        break
                    subset_index = int(mismatched[0])
                    bisect(records[subset_index], round_index, subset_index)
            finally:
                parity_mirror = None

        # ---------------- First pass: contiguous blocks ("subranges") -------- #
        if params.block_first_pass:
            hint = (
                error_rate_hint
                if error_rate_hint is not None
                else params.default_error_rate_hint
            )
            block_size = params.first_pass_block_size(hint)
            block_parities: List[int] = []
            block_seeds: List[int] = []
            for start in range(0, n, block_size):
                stop = min(start + block_size, n)
                mask = ((1 << (stop - start)) - 1) << start
                reference_parity = disclose_mask_parity(mask)
                block_parities.append(reference_parity)
                block_seeds.append(start)  # blocks are identified by offset, not seed
                records.append(
                    _SubsetRecord(
                        seed=start,
                        indices=np.arange(start, stop, dtype=np.int64),
                        mask=mask,
                        reference_parity=reference_parity,
                        working_parity=working_parity(mask),
                    )
                )
            log.record(
                CascadeSubsetAnnouncement(
                    round_index=-1,
                    key_length=n,
                    seeds=block_seeds,
                    parities=block_parities,
                )
            )
            log.record(
                CascadeParityReply(
                    round_index=-1,
                    parities=[record.working_parity for record in records],
                )
            )
            work_all_mismatches(round_index=-1)

        # ---------------- Pseudo-random LFSR subset rounds ------------------- #
        rounds_used = 0
        for round_index in range(params.rounds):
            rounds_used += 1
            errors_before_round = errors_corrected
            seeds = [self.rng.getrandbits(32) for _ in range(params.subsets_per_round)]
            subset_bit_strings = lfsr_subset_masks(seeds, n, params.subset_density)
            masks = [bits.to_int_lsb() for bits in subset_bit_strings]
            announcement_parities = reference_batch.parities(masks)
            round_records: List[_SubsetRecord] = []
            for seed, subset_bits, mask, reference_parity in zip(
                seeds, subset_bit_strings, masks, announcement_parities
            ):
                # Same accounting as disclose_mask_parity, in the same order.
                disclosed += 1
                rank_tracker.add(mask)
                round_records.append(
                    _SubsetRecord(
                        seed=seed,
                        indices=subset_bits.one_indices_array(),
                        mask=mask,
                        reference_parity=reference_parity,
                        working_parity=working_parity(mask),
                    )
                )
            log.record(
                CascadeSubsetAnnouncement(
                    round_index=round_index,
                    key_length=n,
                    seeds=seeds,
                    parities=announcement_parities,
                )
            )
            log.record(
                CascadeParityReply(
                    round_index=round_index,
                    parities=[record.working_parity for record in round_records],
                )
            )
            records.extend(round_records)

            # Work every mismatch to exhaustion; fixing a bit may flip earlier
            # rounds' recorded parities back into mismatch, which is the
            # "cascade" the protocol is named for.
            work_all_mismatches(round_index)

            # Adaptive early exit ("will not disclose too many bits if the
            # number of errors is low"): once a round of fresh subsets finds
            # nothing new to fix, further rounds would only disclose parities
            # without correcting anything.  At least two announcement stages
            # (block pass + one subset round, or two subset rounds) must have
            # run before the protocol may stop.
            had_earlier_stage = params.block_first_pass or round_index >= 1
            if had_earlier_stage and errors_corrected == errors_before_round:
                break

        # Confirmation parities: fresh random subsets whose parities must all
        # agree for the block to be accepted.  Drawing the seeds up front
        # consumes the RNG identically (mask expansion draws nothing), so the
        # whole confirmation stage is one more batched parity check.
        confirmed = True
        confirmation_seeds = [
            self.rng.getrandbits(32) for _ in range(params.confirmation_parities)
        ]
        confirmation_masks = [
            bits.to_int_lsb()
            for bits in lfsr_subset_masks(confirmation_seeds, n, params.subset_density)
        ]
        for mask, reference_parity in zip(
            confirmation_masks, reference_batch.parities(confirmation_masks)
        ):
            disclosed += 1
            rank_tracker.add(mask)
            if reference_parity != working_parity(mask):
                confirmed = False

        corrected = BitString.from_int_lsb(working, n)
        return CascadeResult(
            corrected_key=corrected,
            errors_corrected=errors_corrected,
            disclosed_parities=disclosed,
            independent_parities=rank_tracker.rank,
            rounds_used=rounds_used,
            bisection_queries=bisections,
            confirmed=confirmed,
            matches_reference=(corrected == reference_key),
            message_log=log,
        )

    # ------------------------------------------------------------------ #

    def expected_disclosure(self, key_length: int, error_rate: float) -> float:
        """Rough analytic estimate of parity bits disclosed for planning purposes.

        Each error costs about ``log2(n)`` bisection parities; each round
        additionally announces its fixed complement of subset parities.  The
        engine uses this to decide how many sifted bits to accumulate before a
        block is worth correcting.
        """
        import math

        if key_length <= 0:
            return 0.0
        expected_errors = error_rate * key_length
        per_error = max(math.log2(max(key_length, 2)), 1.0)
        announcements = self.parameters.subsets_per_round * self.parameters.rounds
        return announcements + self.parameters.confirmation_parities + expected_errors * per_error
