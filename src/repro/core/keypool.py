"""The distilled-key reservoir behind the VPN / OPC interface.

The top of the paper's protocol stack (Fig 9) is the "VPN / OPC Interface":
distilled, authenticated key bits accumulate in a reservoir from which
consumers — the IKE daemon reseeding its security associations, the one-time
pad encryptor, the authentication stage replenishing its own secret pool —
draw blocks of key.  The reservoir is where the paper's "race between the
rate at which keying material is put into place and the rate at which it is
consumed" becomes concrete, so the pool tracks both sides of that race.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.util.bits import BitString


class KeyPoolExhaustedError(Exception):
    """Raised when a consumer requests more key than the pool holds."""


@dataclass
class KeyBlock:
    """One block of distilled key delivered by the QKD protocol engine."""

    bits: BitString
    block_id: int
    #: Engine bookkeeping carried along for reporting: QBER seen for this
    #: block and the number of sifted bits it was distilled from.
    qber: float = 0.0
    sifted_bits: int = 0
    created_at: float = 0.0

    def __len__(self) -> int:
        return len(self.bits)


@dataclass
class KeyPool:
    """A FIFO reservoir of distilled key bits shared by Alice and Bob.

    Each endpoint holds its own :class:`KeyPool`; because the QKD protocols
    guarantee both ends distilled identical blocks in identical order, paired
    pools stay bit-for-bit synchronised as long as consumers on both sides
    draw the same amounts in the same order (which the IKE extension
    negotiates explicitly via its Qblock offer/reply).
    """

    name: str = "keypool"
    blocks: List[KeyBlock] = field(default_factory=list)
    #: Bits already consumed from the head block.
    _head_offset: int = 0
    bits_added: int = 0
    bits_consumed: int = 0
    #: Bits dropped by age-based expiry (see :meth:`expire_older_than`).
    bits_expired: int = 0
    #: Optional cap on stored bits, modelling a bounded key store.
    capacity_bits: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #

    def add_block(self, block: KeyBlock) -> None:
        """Append a freshly distilled block."""
        if self.capacity_bits is not None:
            if self.available_bits + len(block) > self.capacity_bits:
                raise ValueError("key pool capacity exceeded")
        self.blocks.append(block)
        self.bits_added += len(block)

    def add_bits(self, bits: BitString, block_id: int = -1, qber: float = 0.0) -> None:
        """Convenience producer used by tests and simple examples."""
        self.add_block(KeyBlock(bits=bits, block_id=block_id, qber=qber))

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #

    @property
    def available_bits(self) -> int:
        """Bits currently available for consumption."""
        total = sum(len(block) for block in self.blocks)
        return total - self._head_offset

    @property
    def available_bytes(self) -> int:
        return self.available_bits // 8

    def draw_bits(self, count: int) -> BitString:
        """Consume ``count`` bits in FIFO order."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > self.available_bits:
            raise KeyPoolExhaustedError(
                f"{self.name}: need {count} bits, have {self.available_bits}"
            )
        collected: List[BitString] = []
        needed = count
        while needed > 0:
            head = self.blocks[0]
            available_in_head = len(head) - self._head_offset
            take = min(needed, available_in_head)
            collected.append(head.bits[self._head_offset : self._head_offset + take])
            self._head_offset += take
            needed -= take
            if self._head_offset == len(head):
                self.blocks.pop(0)
                self._head_offset = 0
        self.bits_consumed += count
        return BitString().concat(*collected)

    def draw_bytes(self, count: int) -> bytes:
        """Consume ``count`` whole bytes of key material."""
        return self.draw_bits(count * 8).to_bytes()

    def peek_available(self) -> int:
        """Alias kept for symmetry with the IKE extension's Qblock accounting."""
        return self.available_bits

    # ------------------------------------------------------------------ #
    # Ageing
    # ------------------------------------------------------------------ #

    def drop_head_blocks(self, count: int) -> int:
        """Drop up to ``count`` whole blocks from the FIFO head; returns bits.

        The expiry primitive: dropped bits are accounted as expired (not
        consumed), and a partially consumed head block only counts its
        remaining bits.  Two synchronised pools dropping the same count stay
        in lock-step.
        """
        dropped = 0
        for _ in range(min(count, len(self.blocks))):
            head = self.blocks.pop(0)
            dropped += len(head) - self._head_offset
            self._head_offset = 0
        self.bits_expired += dropped
        return dropped

    def expire_older_than(self, cutoff: float) -> int:
        """Drop whole blocks created before ``cutoff``; returns bits dropped.

        Key-management policy may bound how long distilled key sits in a
        reservoir before it is considered stale (a compromise-window limit);
        expiry is block-granular and only ever drops from the FIFO head.
        """
        count = 0
        for block in self.blocks:
            if block.created_at >= cutoff:
                break
            count += 1
        return self.drop_head_blocks(count)

    def __repr__(self) -> str:
        return (
            f"KeyPool({self.name}: available={self.available_bits} bits, "
            f"added={self.bits_added}, consumed={self.bits_consumed})"
        )
