"""Trusted-relay key transport (the "key transport network" of section 8).

"After relays have established pairwise agreed-to keys along an end-to-end
point ... they may employ these key pairs to securely transport a key 'hop by
hop' from one endpoint to the other, being onetime-pad encrypted and decrypted
with each pairwise key as it proceeds from one relay to the next.  In this
approach, the end-to-end key will appear in the clear within the relays'
memories proper, but will always be encrypted when passing across a link."

The model keeps a per-link pairwise key pool (filled at the link's estimated
secret-key rate) and transports end-to-end keys along routed paths, consuming
pad from every hop and recording which relays held the key in the clear — the
trust exposure the paper identifies as the architecture's prime weakness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.otp import OneTimePad
from repro.network.routing import PathSelector, RoutingError
from repro.network.topology import NodeKind, QKDNetwork
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG

if TYPE_CHECKING:  # imported lazily at runtime; custody is opt-in
    from repro.dtn.contact import ContactSchedule
    from repro.dtn.transport import CustodyTransport


@dataclass
class KeyTransportResult:
    """Outcome of transporting one end-to-end key across the relay mesh."""

    success: bool
    path: List[str] = field(default_factory=list)
    key: Optional[BitString] = None
    #: Relays that held the key in the clear (the trust exposure).
    relays_exposed: List[str] = field(default_factory=list)
    #: Pairwise key bits consumed per hop.
    pad_bits_consumed: int = 0
    failure_reason: str = ""
    rerouted: bool = False
    #: The hop (node pair) whose pairwise key ran out, when that was the cause.
    failed_hop: Optional[Tuple[str, str]] = None
    #: Set when the key was banked with the custody layer instead of failing
    #: outright (see :meth:`TrustedRelayNetwork.enable_custody`).
    custody_accepted: bool = False
    #: The node holding the custody copy nearest the destination (or the
    #: destination itself when custody delivered instantly).
    custodian: Optional[str] = None
    bundle_id: Optional[int] = None


def pad_material_from_seed(job: Tuple[int, int]) -> bytes:
    """Pairwise pad material for one link, from its own labeled stream.

    ``job`` is ``(seed, n_bytes)``.  Module-level (and therefore picklable)
    because both this module's parallel refill and the kms replenishment
    scheduler fan it out across worker pools; the two callers must bank
    byte-identical material for a given labeled seed, so there is exactly
    one implementation.
    """
    seed, n_bytes = job
    if n_bytes <= 0:
        return b""
    rng = DeterministicRNG(seed)
    return rng.getrandbits(8 * n_bytes).to_bytes(n_bytes, "big")


class TrustedRelayNetwork:
    """Key transport over a mesh of trusted relays."""

    def __init__(
        self,
        network: QKDNetwork,
        rng: Optional[DeterministicRNG] = None,
        metric: str = "hops",
    ):
        self.network = network
        self.rng = rng or DeterministicRNG(0)
        self.selector = PathSelector(network, metric=metric)
        #: Pairwise one-time-pad pools per link, keyed by a sorted node pair.
        self.pairwise_pads: Dict[Tuple[str, str], OneTimePad] = {}
        self.transports: List[KeyTransportResult] = []
        #: Opt-in disruption tolerance (see :meth:`enable_custody`).
        self.custody: Optional["CustodyTransport"] = None
        #: Counts parallel refills so each one derives fresh per-link streams.
        self._refill_epoch = 0
        #: Called with a sorted node pair whenever that link's pad level
        #: changes (consumption or banking) — the hook the kms scheduler's
        #: lazy-deletion heap rides so it never has to rescan all links.
        self._pad_listeners: List[Callable[[Tuple[str, str]], None]] = []
        for edge in network.links():
            self.pairwise_pads[self._pad_key(edge.node_a, edge.node_b)] = OneTimePad()

    @classmethod
    def for_mesh(
        cls,
        n_endpoints: int = 4,
        n_relays: int = 4,
        link_length_km: float = 10.0,
        rng: Optional[DeterministicRNG] = None,
        metric: str = "hops",
        prefill_seconds: float = 0.0,
        workers: Optional[int] = None,
    ) -> "TrustedRelayNetwork":
        """Build a metro-style relay mesh and its key-transport layer in one
        call (the assembly the examples and the :mod:`repro.api` facade use).

        ``prefill_seconds`` optionally lets every link distill pairwise key
        before the network is handed back, so it is immediately usable;
        ``workers`` runs that prefill across the parallel runtime's pool
        (see :meth:`run_links_for`).
        """
        rng = rng or DeterministicRNG(0)
        network = QKDNetwork.relay_mesh(
            n_endpoints=n_endpoints,
            n_relays=n_relays,
            link_length_km=link_length_km,
            rng=rng.fork("topology"),
        )
        relays = cls(network, rng=rng.fork("transport"), metric=metric)
        if prefill_seconds > 0:
            relays.run_links_for(prefill_seconds, workers=workers)
        return relays

    # ------------------------------------------------------------------ #
    # Pairwise key replenishment
    # ------------------------------------------------------------------ #

    @staticmethod
    def _pad_key(node_a: str, node_b: str) -> Tuple[str, str]:
        return tuple(sorted((node_a, node_b)))

    def pad_for(self, node_a: str, node_b: str) -> OneTimePad:
        return self.pairwise_pads[self._pad_key(node_a, node_b)]

    def add_pad_listener(self, listener: Callable[[Tuple[str, str]], None]) -> None:
        """Subscribe to pad-level changes (called with the sorted pair)."""
        self._pad_listeners.append(listener)

    def notify_pad_change(self, node_a: str, node_b: str) -> None:
        """Tell subscribers one link's pad level just changed.

        Every code path that consumes or banks pairwise pad must call this
        (or go through :meth:`bank_pad`); the kms scheduler's indexed
        dispatch order is only exact if no pad change goes unannounced.
        """
        key = self._pad_key(node_a, node_b)
        for listener in self._pad_listeners:
            listener(key)

    def bank_pad(self, node_a: str, node_b: str, material: bytes) -> None:
        """Add pairwise pad material to one link and announce the change."""
        if not material:
            return
        self.pad_for(node_a, node_b).add_key_material(material)
        self.notify_pad_change(node_a, node_b)

    def run_links_for(
        self,
        seconds: float,
        workers: Optional[int] = None,
        backend: str = "process",
    ) -> None:
        """Let every usable link distill pairwise key for ``seconds`` seconds.

        The amount added per link is its analytic secret-key rate times the
        duration — the steady-state behaviour of each link's protocol engine
        without Monte-Carlo cost, which is what the network-scale experiments
        need.

        With ``workers`` unset the material comes from the network's single
        sequential stream, exactly as it always has.  Passing a worker count
        switches to the parallel refill: every link's material is drawn from
        its own labeled fork (``pad/<epoch>/<node-a>--<node-b>``), generated
        concurrently across the runtime's pool and applied in link order —
        the result depends only on the network seed, the refill epoch and
        the link names, never on the worker count.
        """
        if seconds < 0:
            raise ValueError("duration must be non-negative")
        if workers is None:
            for edge in self.network.links():
                if not edge.usable:
                    continue
                new_bits = int(edge.secret_key_rate_bps * seconds)
                new_bytes = new_bits // 8
                if new_bytes <= 0:
                    continue
                material = bytes(
                    self.rng.getrandbits(8) for _ in range(new_bytes)
                )
                self.bank_pad(edge.node_a, edge.node_b, material)
            return

        from repro.runtime.pool import parallel_map

        epoch = self._refill_epoch
        self._refill_epoch += 1
        pairs: List[Tuple[str, str]] = []
        jobs: List[Tuple[int, int]] = []
        for edge in self.network.links():
            if not edge.usable:
                continue
            new_bytes = int(edge.secret_key_rate_bps * seconds) // 8
            if new_bytes <= 0:
                continue
            node_a, node_b = self._pad_key(edge.node_a, edge.node_b)
            label = f"pad/{epoch}/{node_a}--{node_b}"
            pairs.append((node_a, node_b))
            jobs.append((self.rng.fork_labeled(label).seed, new_bytes))
        materials = parallel_map(
            pad_material_from_seed, jobs, workers=workers, backend=backend
        )
        for (node_a, node_b), material in zip(pairs, materials):
            self.bank_pad(node_a, node_b, material)

    def pairwise_key_available_bits(self, node_a: str, node_b: str) -> int:
        return self.pad_for(node_a, node_b).available_bytes * 8

    # ------------------------------------------------------------------ #
    # Disruption tolerance (opt-in)
    # ------------------------------------------------------------------ #

    def enable_custody(
        self,
        schedule: Optional["ContactSchedule"] = None,
        rng: Optional[DeterministicRNG] = None,
        policy: str = "scheduled",
        ttl_seconds: float = 3600.0,
        capacity_bits: int = 1 << 20,
    ) -> "CustodyTransport":
        """Attach a store-and-forward custody layer to this mesh.

        Once enabled, :meth:`transport_with_reroute` no longer fails a key
        outright when the mesh offers no live path: the key is banked at
        the furthest reachable custodian and forwarded as contact windows
        open (see :mod:`repro.dtn`).  Custody randomness comes from
        ``rng``'s labeled streams (``dtn/bundle/<n>``,
        ``dtn/epidemic/<n>``), never from this network's own stream, so
        enabling custody does not perturb live-transport key material.
        """
        from repro.dtn.transport import CustodyTransport

        self.custody = CustodyTransport(
            self,
            schedule=schedule,
            rng=rng or DeterministicRNG(0),
            policy=policy,
            ttl_seconds=ttl_seconds,
            capacity_bits=capacity_bits,
        )
        return self.custody

    # ------------------------------------------------------------------ #
    # End-to-end key transport
    # ------------------------------------------------------------------ #

    def transport_key(
        self,
        source: str,
        destination: str,
        key_bits: int = 256,
        within: Optional[Iterable[str]] = None,
    ) -> KeyTransportResult:
        """Deliver a fresh end-to-end key from ``source`` to ``destination``.

        The key is generated at the source, then one-time-pad wrapped across
        each hop in turn; every intermediate relay decrypts and re-encrypts
        it, so it appears in the relay's memory in the clear.  Any hop whose
        pairwise pool cannot cover the key aborts the transport.  ``within``
        confines routing to a node subset (zone-scoped transport).
        """
        if key_bits <= 0 or key_bits % 8:
            raise ValueError("key length must be a positive multiple of 8 bits")
        try:
            path = self.selector.find_path(source, destination, within=within)
        except RoutingError as exc:
            result = KeyTransportResult(success=False, failure_reason=str(exc))
            self.transports.append(result)
            return result

        key = BitString.random(key_bits, self.rng)
        key_bytes = key.to_bytes()
        pad_consumed = 0
        relays_exposed: List[str] = []

        # Walk the path hop by hop: encrypt onto the wire with the hop's
        # pairwise pad, decrypt at the far end of the hop.
        in_flight = key_bytes
        for hop_index, (node_a, node_b) in enumerate(zip(path, path[1:])):
            pad = self.pad_for(node_a, node_b)
            if pad.available_bytes < len(in_flight):
                result = KeyTransportResult(
                    success=False,
                    path=path,
                    failure_reason=(
                        f"pairwise key exhausted on hop {node_a}--{node_b} "
                        f"({pad.available_bytes} bytes available)"
                    ),
                    pad_bits_consumed=pad_consumed,
                    relays_exposed=relays_exposed,
                    failed_hop=(node_a, node_b),
                )
                self.transports.append(result)
                return result
            # Both ends of a link hold identical pairwise pools; the model
            # keeps a single pool per link, so the receiving node's decryption
            # uses the same pad bytes the sender consumed.
            hop_pad_bytes = pad.peek(len(in_flight))
            ciphertext = pad.encrypt(in_flight)
            self.notify_pad_change(node_a, node_b)
            pad_consumed += len(in_flight) * 8
            arriving_node = node_b
            in_flight = bytes(c ^ p for c, p in zip(ciphertext, hop_pad_bytes))
            node = self.network.node(arriving_node)
            if node.kind is NodeKind.TRUSTED_RELAY:
                relays_exposed.append(arriving_node)

        result = KeyTransportResult(
            success=True,
            path=path,
            key=key,
            relays_exposed=relays_exposed,
            pad_bits_consumed=pad_consumed,
        )
        self.transports.append(result)
        return result

    def transport_with_reroute(
        self,
        source: str,
        destination: str,
        key_bits: int = 256,
        now: float = 0.0,
        within: Optional[Iterable[str]] = None,
    ) -> KeyTransportResult:
        """Transport a key, falling back to alternative paths on failure.

        This is the resilience property the mesh buys: if the preferred path
        fails (cut link, eavesdropping, exhausted pairwise key), the transport
        is retried over whatever usable capacity remains.  With custody
        enabled (:meth:`enable_custody`) there is a second fallback: a key
        that cannot move end to end *now* is banked at the furthest
        reachable custodian and store-and-forwarded as contacts open —
        ``now`` timestamps the custody submission.  ``within`` confines
        routing (and every retry) to a node subset.
        """
        first = self.transport_key(source, destination, key_bits, within=within)
        if first.success:
            return first

        # Temporarily exclude hops whose pairwise key is exhausted and retry
        # over whatever capacity remains; restore the exclusions afterwards
        # (an exhausted hop is not broken, it is merely out of key for now).
        excluded: List[Tuple[str, str]] = []
        last = first
        try:
            while last.failed_hop is not None:
                node_a, node_b = last.failed_hop
                link = self.network.link(node_a, node_b)
                if not link.operational:
                    break
                self.network.suspend_link(node_a, node_b)
                excluded.append((node_a, node_b))
                retry = self.transport_key(source, destination, key_bits, within=within)
                if retry.success:
                    retry.rerouted = True
                    return retry
                last = retry
        finally:
            for node_a, node_b in excluded:
                self.network.resume_link(node_a, node_b)

        last.failure_reason += " (no usable alternative path)"
        if self.custody is not None:
            custody_result = self._bank_in_custody(
                source, destination, key_bits, now, last
            )
            if custody_result is not None:
                return custody_result
        return last

    def _bank_in_custody(
        self,
        source: str,
        destination: str,
        key_bits: int,
        now: float,
        failed: KeyTransportResult,
    ) -> Optional[KeyTransportResult]:
        """Bank a key the live mesh could not move; ``None`` when even
        custody cannot help (statically disconnected destination)."""
        from repro.dtn.store import DELIVERED
        from repro.network.routing import RoutingError as _RoutingError

        try:
            bundle = self.custody.submit(source, destination, key_bits, now)
        except _RoutingError:
            return None
        if bundle.state == DELIVERED:
            # Custody's hop-by-hop forwarding found a way through after all
            # (e.g. contacts opened between the routing decision and now).
            return KeyTransportResult(
                success=True,
                key=bundle.key,
                pad_bits_consumed=bundle.pad_bits_consumed,
                rerouted=True,
                custody_accepted=True,
                custodian=destination,
                bundle_id=bundle.bundle_id,
            )
        locations = self.custody.locations(bundle)
        custodian = min(
            locations,
            key=lambda node: (
                self.custody.static_distance(node, destination),
                node,
            ),
        )
        return KeyTransportResult(
            success=False,
            failure_reason=(
                failed.failure_reason
                + f"; banked in custody as bundle {bundle.bundle_id} "
                f"at {custodian!r}"
            ),
            pad_bits_consumed=bundle.pad_bits_consumed,
            custody_accepted=True,
            custodian=custodian,
            bundle_id=bundle.bundle_id,
        )

    # ------------------------------------------------------------------ #
    # Path-pad accounting (zoned kms delivery)
    # ------------------------------------------------------------------ #

    def path_pad_shortage(
        self, paths: Sequence[Sequence[str]], n_bytes: int
    ) -> Optional[Tuple[str, str]]:
        """The first hop (across all ``paths``) that cannot cover ``n_bytes``
        of pad, or ``None`` when every hop can — the all-or-nothing precheck
        for a segmented (trunk + zone legs) delivery."""
        for path in paths:
            for node_a, node_b in zip(path, path[1:]):
                if self.pad_for(node_a, node_b).available_bytes < n_bytes:
                    return self._pad_key(node_a, node_b)
        return None

    def spend_path_pad(self, paths: Sequence[Sequence[str]], payload: bytes) -> int:
        """Consume pairwise pad carrying ``payload`` across every hop of the
        given paths, exactly as live transport does (one OTP encryption per
        hop), returning the total pad bits consumed.

        The caller prechecks with :meth:`path_pad_shortage`; the zoned kms
        uses this for the intra-zone legs of an inter-zone delivery, whose
        key material comes from a trunk store rather than a fresh draw.
        """
        consumed = 0
        for path in paths:
            for node_a, node_b in zip(path, path[1:]):
                self.pad_for(node_a, node_b).encrypt(payload)
                self.notify_pad_change(node_a, node_b)
                consumed += len(payload) * 8
        return consumed

    # ------------------------------------------------------------------ #

    def delivery_availability(
        self, source: str, destination: str, trials: int, key_bits: int = 256
    ) -> float:
        """Fraction of ``trials`` transports that succeed (used by E8)."""
        if trials <= 0:
            raise ValueError("trials must be positive")
        successes = 0
        for _ in range(trials):
            if self.transport_key(source, destination, key_bits).success:
                successes += 1
        return successes / trials
