"""Path selection and rerouting across the QKD mesh.

"When a given point-to-point QKD link within the relay mesh fails — e.g. by
fiber cut or too much eavesdropping or noise — that link is abandoned and
another used instead" (paper section 8).  The :class:`PathSelector` picks
paths over the usable subgraph; the metric can be hop count (fewest trusted
relays exposed to the key), total fiber length, or inverse key rate (the
bottleneck-avoiding choice for sustained key transport).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import networkx as nx

from repro.network.topology import QKDNetwork


class RoutingError(Exception):
    """Raised when no usable path exists between two nodes.

    The message always names the source, the destination, and — for a
    disconnected usable subgraph — the set of nodes still reachable from
    the source, so a soak failure log shows *which* partition the mesh
    fell into rather than just that it fell apart.
    """


def _describe_reachable(usable: "nx.Graph", source: str) -> str:
    """``"N node(s) reachable from 'src': a, b, c"`` for error messages."""
    reachable = sorted(nx.node_connected_component(usable, source))
    return (
        f"{len(reachable)} node(s) reachable from {source!r}: "
        f"{', '.join(reachable)}"
    )


class PathSelector:
    """Chooses end-to-end paths across the usable part of the network."""

    METRICS = ("hops", "length", "inverse-rate")

    def __init__(self, network: QKDNetwork, metric: str = "hops"):
        if metric not in self.METRICS:
            raise ValueError(f"metric must be one of {self.METRICS}")
        self.network = network
        self.metric = metric

    # ------------------------------------------------------------------ #

    def _edge_weight(self, node_a: str, node_b: str, data) -> float:
        link = data["link"]
        if self.metric == "hops":
            return 1.0
        if self.metric == "length":
            return link.length_km
        # inverse-rate: prefer links with plenty of key; guard against zero.
        return 1.0 / max(link.secret_key_rate_bps, 1e-6)

    def _usable(self, within: Optional[Iterable[str]]) -> "nx.Graph":
        """The usable subgraph, optionally restricted to a node subset.

        ``within`` is the zone-aware query the metro-scale kms layer uses:
        a path confined to one zone's members never leaves the zone, so a
        zone scheduler's work stays independent of the rest of the mesh.
        """
        usable = self.network.usable_subgraph()
        if within is None:
            return usable
        allowed = set(within)
        return usable.subgraph(n for n in usable.nodes if n in allowed)

    def find_path(
        self,
        source: str,
        destination: str,
        within: Optional[Iterable[str]] = None,
    ) -> List[str]:
        """The best usable path, as a list of node names (inclusive of ends).

        Raises :class:`RoutingError` if the usable subgraph does not connect
        the two nodes — the situation a point-to-point deployment is always
        one fiber cut away from, and a mesh is designed to avoid.  With
        ``within`` the search is confined to that node subset (zone-scoped
        queries); both ends must be members.
        """
        usable = self._usable(within)
        for name in (source, destination):
            if name not in usable:
                raise RoutingError(
                    f"unknown node {name!r} in route {source!r} -> {destination!r}"
                    + (" (restricted to within-set)" if within is not None else "")
                )
        try:
            return nx.shortest_path(
                usable, source, destination, weight=self._edge_weight
            )
        except nx.NetworkXNoPath as exc:
            raise RoutingError(
                f"no usable QKD path from {source!r} to {destination!r}; "
                + _describe_reachable(usable, source)
            ) from exc

    def path_exists(
        self,
        source: str,
        destination: str,
        within: Optional[Iterable[str]] = None,
    ) -> bool:
        try:
            self.find_path(source, destination, within=within)
            return True
        except RoutingError:
            return False

    def disjoint_paths(self, source: str, destination: str) -> List[List[str]]:
        """Edge-disjoint usable paths (a measure of the mesh's redundancy).

        Raises :class:`RoutingError` (naming the reachable node set) when
        the usable subgraph provides *no* path at all — zero redundancy on
        a connected pair returns ``[[...single path...]]``, but a
        disconnected pair is an error the caller must see, not an empty
        list that reads like "no spare paths".
        """
        usable = self.network.usable_subgraph()
        for name in (source, destination):
            if name not in usable:
                raise RoutingError(
                    f"unknown node {name!r} in route {source!r} -> {destination!r}"
                )
        try:
            return [list(p) for p in nx.edge_disjoint_paths(usable, source, destination)]
        except nx.NetworkXNoPath as exc:
            raise RoutingError(
                f"no edge-disjoint usable QKD paths from {source!r} to "
                f"{destination!r}; " + _describe_reachable(usable, source)
            ) from exc

    def path_length_km(self, path: List[str]) -> float:
        """Total fiber length along a path."""
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.network.link(a, b).length_km
        return total

    def bottleneck_rate_bps(self, path: List[str]) -> float:
        """The lowest per-link key rate along the path (the transport bottleneck)."""
        if len(path) < 2:
            return 0.0
        return min(
            self.network.link(a, b).secret_key_rate_bps for a, b in zip(path, path[1:])
        )

    def relays_on_path(self, path: List[str]) -> List[str]:
        """The intermediate nodes that must be trusted with the key."""
        return [name for name in path[1:-1]]
