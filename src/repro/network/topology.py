"""The QKD network graph and interconnection-cost analysis.

Nodes are QKD endpoints, trusted relays or untrusted optical switches; edges
are QKD links (or dark-fiber segments, for the optical-switch case)
characterised by their length and by the secret-key rate the analytic link
model predicts for them.  The graph is a thin wrapper around ``networkx`` so
the routing layer can use its path algorithms directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.link.qkd_link import LinkParameters, QKDLink
from repro.util.rng import DeterministicRNG


class NodeKind(enum.Enum):
    """Roles a node can play in the DARPA Quantum Network architecture."""

    ENDPOINT = "endpoint"
    TRUSTED_RELAY = "trusted-relay"
    UNTRUSTED_SWITCH = "untrusted-switch"


@dataclass
class QKDNode:
    """One node of the network."""

    name: str
    kind: NodeKind = NodeKind.ENDPOINT
    #: Whether the node is physically secured (relevant to trusted relays).
    physically_secured: bool = True


@dataclass
class QKDLinkEdge:
    """One QKD link (or fiber segment) between two adjacent nodes."""

    node_a: str
    node_b: str
    length_km: float = 10.0
    #: Operational state: a cut fiber or a link shut down due to eavesdropping.
    operational: bool = True
    #: Flagged when the protocol stack on this link has detected eavesdropping
    #: (QBER above threshold); the routing layer then avoids it.
    eavesdropping_detected: bool = False
    #: Cached secret-key rate for the link, bits/second (analytic model).
    secret_key_rate_bps: float = 0.0

    @property
    def usable(self) -> bool:
        return self.operational and not self.eavesdropping_detected

    def endpoints(self) -> Tuple[str, str]:
        return (self.node_a, self.node_b)


class QKDNetwork:
    """A mesh of QKD nodes and links."""

    def __init__(self, rng: Optional[DeterministicRNG] = None):
        self.graph = nx.Graph()
        self.rng = rng or DeterministicRNG(0)
        #: Sorted node pairs of links currently not usable, maintained by
        #: every state-changing method so per-epoch consumers (the kms
        #: replenishment scheduler) need not walk all links to find them.
        self._unusable: set = set()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_node(self, node: QKDNode) -> None:
        if node.name in self.graph:
            raise ValueError(f"node {node.name!r} already exists")
        self.graph.add_node(node.name, node=node)

    def add_endpoint(self, name: str) -> QKDNode:
        node = QKDNode(name, NodeKind.ENDPOINT)
        self.add_node(node)
        return node

    def add_relay(self, name: str, physically_secured: bool = True) -> QKDNode:
        node = QKDNode(name, NodeKind.TRUSTED_RELAY, physically_secured)
        self.add_node(node)
        return node

    def add_switch(self, name: str) -> QKDNode:
        node = QKDNode(name, NodeKind.UNTRUSTED_SWITCH)
        self.add_node(node)
        return node

    def add_link(self, node_a: str, node_b: str, length_km: float = 10.0) -> QKDLinkEdge:
        for name in (node_a, node_b):
            if name not in self.graph:
                raise KeyError(f"unknown node {name!r}")
        edge = QKDLinkEdge(node_a=node_a, node_b=node_b, length_km=length_km)
        edge.secret_key_rate_bps = self.estimate_link_rate(length_km)
        self.graph.add_edge(node_a, node_b, link=edge)
        return edge

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def node(self, name: str) -> QKDNode:
        return self.graph.nodes[name]["node"]

    def link(self, node_a: str, node_b: str) -> QKDLinkEdge:
        return self.graph.edges[node_a, node_b]["link"]

    def nodes(self) -> List[QKDNode]:
        return [self.graph.nodes[name]["node"] for name in self.graph.nodes]

    def links(self) -> List[QKDLinkEdge]:
        return [data["link"] for _, _, data in self.graph.edges(data=True)]

    def endpoints(self) -> List[str]:
        return [n.name for n in self.nodes() if n.kind is NodeKind.ENDPOINT]

    def usable_subgraph(self) -> nx.Graph:
        """A copy of the graph containing only usable (up, clean) links."""
        usable = nx.Graph()
        usable.add_nodes_from(self.graph.nodes(data=True))
        for a, b, data in self.graph.edges(data=True):
            if data["link"].usable:
                usable.add_edge(a, b, **data)
        return usable

    def unusable_link_keys(self) -> List[Tuple[str, str]]:
        """Sorted node pairs of links currently cut, suspended or flagged."""
        return sorted(self._unusable)

    # ------------------------------------------------------------------ #
    # Failure / attack injection
    # ------------------------------------------------------------------ #

    def _note_state(self, node_a: str, node_b: str) -> None:
        key = tuple(sorted((node_a, node_b)))
        if self.link(node_a, node_b).usable:
            self._unusable.discard(key)
        else:
            self._unusable.add(key)

    def cut_link(self, node_a: str, node_b: str) -> None:
        """Take a link down (fiber cut or equipment failure)."""
        self.link(node_a, node_b).operational = False
        self._note_state(node_a, node_b)

    def restore_link(self, node_a: str, node_b: str) -> None:
        self.link(node_a, node_b).operational = True
        self.link(node_a, node_b).eavesdropping_detected = False
        self._note_state(node_a, node_b)

    def suspend_link(self, node_a: str, node_b: str) -> None:
        """Temporarily exclude a link from routing without clearing flags.

        Unlike :meth:`cut_link`/:meth:`restore_link` this pair is for
        short-lived exclusions (an exhausted pad during a reroute search):
        :meth:`resume_link` puts the operational bit back without touching
        the eavesdropping flag, so a quarantined link stays quarantined.
        """
        self.link(node_a, node_b).operational = False
        self._note_state(node_a, node_b)

    def resume_link(self, node_a: str, node_b: str) -> None:
        self.link(node_a, node_b).operational = True
        self._note_state(node_a, node_b)

    def mark_eavesdropped(self, node_a: str, node_b: str) -> None:
        """Record that this link's QKD protocols detected eavesdropping."""
        self.link(node_a, node_b).eavesdropping_detected = True
        self._note_state(node_a, node_b)

    def fail_random_links(self, count: int) -> List[QKDLinkEdge]:
        """Cut ``count`` distinct randomly chosen operational links."""
        candidates = [edge for edge in self.links() if edge.operational]
        count = min(count, len(candidates))
        chosen = self.rng.sample(candidates, count)
        for edge in chosen:
            edge.operational = False
            self._note_state(edge.node_a, edge.node_b)
        return chosen

    # ------------------------------------------------------------------ #
    # Rates
    # ------------------------------------------------------------------ #

    @staticmethod
    def estimate_link_rate(length_km: float) -> float:
        """Secret-key rate of a point-to-point link of the given length."""
        link = QKDLink(LinkParameters.for_distance(length_km), DeterministicRNG(0))
        return link.estimated_secret_key_rate()

    # ------------------------------------------------------------------ #
    # Standard topologies used by the benchmarks
    # ------------------------------------------------------------------ #

    @classmethod
    def point_to_point(cls, length_km: float = 10.0) -> "QKDNetwork":
        net = cls()
        net.add_endpoint("alice")
        net.add_endpoint("bob")
        net.add_link("alice", "bob", length_km)
        return net

    @classmethod
    def relay_mesh(
        cls,
        n_endpoints: int = 4,
        n_relays: int = 4,
        link_length_km: float = 10.0,
        extra_cross_links: int = 2,
        rng: Optional[DeterministicRNG] = None,
    ) -> "QKDNetwork":
        """A metro-style mesh: a ring of relays with endpoints hanging off it.

        This is the shape the paper sketches for the DARPA Quantum Network:
        BBN, Harvard and BU endpoints joined through a small mesh of relays,
        with enough redundancy that any single link can be lost.
        """
        net = cls(rng)
        relays = [f"relay-{i}" for i in range(n_relays)]
        for name in relays:
            net.add_relay(name)
        for i, name in enumerate(relays):
            net.add_link(name, relays[(i + 1) % n_relays], link_length_km)
        endpoints = [f"endpoint-{i}" for i in range(n_endpoints)]
        for i, name in enumerate(endpoints):
            net.add_endpoint(name)
            net.add_link(name, relays[i % n_relays], link_length_km)
        # A few chords across the relay ring for redundancy.
        added = 0
        for i in range(n_relays):
            for j in range(i + 2, n_relays):
                if added >= extra_cross_links:
                    break
                if not net.graph.has_edge(relays[i], relays[j]) and (j - i) != n_relays - 1:
                    net.add_link(relays[i], relays[j], link_length_km)
                    added += 1
        return net

    def __repr__(self) -> str:
        return (
            f"QKDNetwork({self.graph.number_of_nodes()} nodes, "
            f"{self.graph.number_of_edges()} links)"
        )


def interconnection_cost(n_enclaves: int) -> Dict[str, int]:
    """Links required to fully interconnect N private enclaves (section 8).

    "QKD networks can greatly reduce the cost of large-scale interconnectivity
    of private enclaves by reducing the required (N x N-1) / 2 point-to-point
    links to as few as N links in the case of a simple star topology."
    """
    if n_enclaves < 0:
        raise ValueError("the number of enclaves must be non-negative")
    return {
        "pairwise_links": n_enclaves * (n_enclaves - 1) // 2,
        "star_links": n_enclaves,
    }
