"""QKD networks: meshes of links, trusted relays and untrusted switches.

Point-to-point QKD links have the weaknesses catalogued in section 2 of the
paper — fragility, limited reach, poor scaling of pairwise interconnection —
and sections 3 and 8 describe the DARPA Quantum Network's answer: weave
multiple links into a network.

* :mod:`repro.network.topology` — the network graph (endpoints, relays,
  switches, links with loss budgets and per-link key rates) and the
  interconnection-cost analysis (N·(N-1)/2 point-to-point links versus N
  links through a key-distribution network).
* :mod:`repro.network.relay` — trusted-relay key transport: pairwise QKD keys
  along a path, with the end-to-end key one-time-pad wrapped hop by hop.
* :mod:`repro.network.switches` — untrusted all-optical switch paths: no
  trust in intermediate nodes, but every switch spends insertion loss and the
  photon must survive the whole composite path.
* :mod:`repro.network.routing` — path selection and rerouting around failed
  or eavesdropped links.
"""

from repro.network.topology import QKDNetwork, QKDNode, QKDLinkEdge, NodeKind, interconnection_cost
from repro.network.relay import TrustedRelayNetwork, KeyTransportResult
from repro.network.switches import UntrustedSwitchNetwork, SwitchedPathReport
from repro.network.routing import PathSelector, RoutingError

__all__ = [
    "QKDNetwork",
    "QKDNode",
    "QKDLinkEdge",
    "NodeKind",
    "interconnection_cost",
    "TrustedRelayNetwork",
    "KeyTransportResult",
    "UntrustedSwitchNetwork",
    "SwitchedPathReport",
    "PathSelector",
    "RoutingError",
]
