"""Untrusted all-optical switch networks (paper section 8).

"Untrusted QKD switches do not participate in QKD protocols at all.  Instead
they set up all-optical paths through the network mesh of fibers, switches,
and endpoints.  Thus a photon from its source QKD endpoint proceeds, without
measurement, from switch to switch across the optical QKD network until it
reaches the destination endpoint at which point it is detected."

The consequence the paper highlights: end-to-end key distribution with no
trusted intermediaries, but "each switch adds at least a fractional dB
insertion loss along the photonic path", so switches *reduce* reach instead
of extending it.  :class:`UntrustedSwitchNetwork` composes switched optical
paths across the topology graph, computes their loss budgets, and evaluates
the end-to-end QKD link that would run over each path — which is exactly what
experiment E9 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.link.qkd_link import LinkParameters, QKDLink
from repro.network.routing import PathSelector
from repro.network.topology import NodeKind, QKDNetwork
from repro.optics.channel import ChannelParameters
from repro.optics.fiber import FiberSpan, LossElement, OpticalPath
from repro.util.rng import DeterministicRNG
from repro.util.units import DEFAULT_SWITCH_INSERTION_LOSS_DB


@dataclass
class SwitchedPathReport:
    """The photonic budget and key rate of one end-to-end switched path."""

    path: List[str]
    n_switches: int
    fiber_length_km: float
    total_loss_db: float
    expected_qber: float
    secret_key_rate_bps: float

    @property
    def viable(self) -> bool:
        """Whether the path can distill any key at all."""
        return self.secret_key_rate_bps > 0.0


class UntrustedSwitchNetwork:
    """End-to-end QKD over all-optical paths through MEMS-style switches."""

    def __init__(
        self,
        network: QKDNetwork,
        switch_insertion_loss_db: float = DEFAULT_SWITCH_INSERTION_LOSS_DB,
        rng: Optional[DeterministicRNG] = None,
    ):
        if switch_insertion_loss_db < 0:
            raise ValueError("insertion loss must be non-negative")
        self.network = network
        self.switch_insertion_loss_db = switch_insertion_loss_db
        self.rng = rng or DeterministicRNG(0)
        self.selector = PathSelector(network, metric="length")

    # ------------------------------------------------------------------ #

    def optical_path_for(self, node_path: List[str]) -> OpticalPath:
        """Build the composite optical path for a node sequence.

        Every fiber segment contributes its length; every intermediate node
        that is a switch contributes its insertion loss.  (A trusted relay on
        the path would terminate the photon — that is a configuration error
        for an untrusted path, and is rejected.)
        """
        path = OpticalPath()
        for node_a, node_b in zip(node_path, node_path[1:]):
            edge = self.network.link(node_a, node_b)
            path.add_span(FiberSpan(edge.length_km))
        for name in node_path[1:-1]:
            node = self.network.node(name)
            if node.kind is NodeKind.TRUSTED_RELAY:
                raise ValueError(
                    f"node {name!r} is a trusted relay; an untrusted all-optical "
                    "path cannot pass through it without terminating the photons"
                )
            path.add_element(
                LossElement(name=f"switch:{name}", loss_db=self.switch_insertion_loss_db)
            )
        return path

    def evaluate_path(self, node_path: List[str]) -> SwitchedPathReport:
        """Loss budget, QBER and key rate for a specific node sequence."""
        optical = self.optical_path_for(node_path)
        link = QKDLink(
            LinkParameters(channel=ChannelParameters(path=optical)),
            DeterministicRNG(0),
        )
        n_switches = sum(
            1
            for name in node_path[1:-1]
            if self.network.node(name).kind is NodeKind.UNTRUSTED_SWITCH
        )
        return SwitchedPathReport(
            path=list(node_path),
            n_switches=n_switches,
            fiber_length_km=optical.length_km,
            total_loss_db=optical.loss_db,
            expected_qber=link.expected_qber(),
            secret_key_rate_bps=link.estimated_secret_key_rate(),
        )

    def evaluate_route(self, source: str, destination: str) -> SwitchedPathReport:
        """Route across the usable topology and evaluate the resulting path."""
        node_path = self.selector.find_path(source, destination)
        return self.evaluate_path(node_path)

    # ------------------------------------------------------------------ #

    @staticmethod
    def chain(
        n_switches: int,
        span_length_km: float,
        switch_insertion_loss_db: float = DEFAULT_SWITCH_INSERTION_LOSS_DB,
    ) -> SwitchedPathReport:
        """Evaluate a linear chain: endpoint - switch - ... - switch - endpoint.

        The parametric form used by benchmark E9: ``n_switches`` switches
        joining ``n_switches + 1`` equal fiber spans.
        """
        network = QKDNetwork()
        network.add_endpoint("source")
        previous = "source"
        for index in range(n_switches):
            name = f"switch-{index}"
            network.add_switch(name)
            network.add_link(previous, name, span_length_km)
            previous = name
        network.add_endpoint("destination")
        network.add_link(previous, "destination", span_length_km)
        switched = UntrustedSwitchNetwork(network, switch_insertion_loss_db)
        node_path = ["source"] + [f"switch-{i}" for i in range(n_switches)] + ["destination"]
        return switched.evaluate_path(node_path)
