"""IPsec / IKE with the paper's QKD extensions (section 7).

The DARPA Quantum Network does not invent a new secure-traffic protocol; it
feeds quantum-distilled key into the standard IPsec architecture (RFC 2401)
and its key-exchange protocol IKE (RFC 2409), modified in two ways:

* **rapid reseeding** — distilled QKD bits are mixed into the IKE Phase-2
  key material, and the AES keys protecting each Security Association are
  refreshed "about once a minute";
* **one-time pad SAs** — for the most sensitive tunnels, a negotiated stream
  of QKD bits is used directly as a Vernam cipher for the ESP payload.

The subpackage models the pieces of that architecture that the extensions
touch: IP/ESP packets, the Security Policy Database (SPD), the Security
Association Database (SAD) with lifetimes and rollover, the IKE daemon with
its QKD "Qblock" negotiation (whose log output regenerates the paper's
Fig 12), ESP tunnel processing, and the VPN gateway that ties them together.
"""

from repro.ipsec.packets import IPPacket, ESPPacket
from repro.ipsec.spd import SecurityPolicy, SecurityPolicyDatabase, PolicyAction, CipherSuite
from repro.ipsec.sad import SecurityAssociation, SecurityAssociationDatabase
from repro.ipsec.ike import IKEDaemon, IKEConfig, QkdKeyNegotiation
from repro.ipsec.esp import EspProcessor, EspError
from repro.ipsec.gateway import VPNGateway, GatewayPair

__all__ = [
    "IPPacket",
    "ESPPacket",
    "SecurityPolicy",
    "SecurityPolicyDatabase",
    "PolicyAction",
    "CipherSuite",
    "SecurityAssociation",
    "SecurityAssociationDatabase",
    "IKEDaemon",
    "IKEConfig",
    "QkdKeyNegotiation",
    "EspProcessor",
    "EspError",
    "VPNGateway",
    "GatewayPair",
]
