"""The IKE daemon with the paper's QKD key-agreement extension.

IKE (RFC 2409) negotiates Security Associations in two phases: Phase 1
establishes an authenticated control channel between the two gateways
("ISAKMP SA"); Phase 2 ("quick mode") negotiates the SAs that actually
protect traffic, deriving their key material (KEYMAT) from a pseudo-random
function keyed by Phase-1 secrets.

The paper's rapid-reseeding extension "include[s] distilled QKD bits into the
IKE Phase 2 hash, so that keys protecting IPsec Security Associations (SAs)
are derived from QKD", and a companion extension negotiates blocks of QKD
bits ("Qblocks") for use as a one-time pad.  Fig 12 of the paper shows the
racoon log of the first negotiation that ever did this; :meth:`IKEDaemon`
emits log lines of the same shape so that experiment E7 can regenerate the
figure's content from a live negotiation.

The model abstracts away wire formats and retransmission; what it keeps is
the negotiation state machine, the Qblock offer/reply accounting against both
ends' key pools, the KEYMAT derivation, SA installation, lifetimes and
rollover, and the failure modes the paper calls out (negotiation timeout when
QKD bits accumulate too slowly; undetected key mismatch when the two pools
have diverged).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.keypool import KeyPool
from repro.crypto.otp import OneTimePad
from repro.crypto.sha1 import hmac_sha1, prf_expand
from repro.ipsec.sad import SecurityAssociation, SecurityAssociationDatabase
from repro.ipsec.spd import CipherSuite, SecurityPolicy
from repro.util.rng import DeterministicRNG

#: Size of one negotiated Qblock in bits, matching the paper's Fig 12
#: ("reply 1 Qblocks 1024 bits").
QBLOCK_BITS = 1024


class NegotiationError(Exception):
    """Raised when a Phase-2 negotiation cannot complete."""


class NegotiationTimeout(NegotiationError):
    """Raised when QKD key accumulates too slowly for the IKE timeout.

    The paper notes that standard IKE Phase-2 timeouts ("less than 10
    seconds") "may be too small for systems employing QKD since it may take a
    while to accumulate enough bits for a successful negotiation".
    """


@dataclass
class IKEConfig:
    """Configuration of one gateway's IKE daemon."""

    gateway_name: str
    address: str
    peer_address: str
    preshared_key: bytes = b"darpa-quantum-network"
    phase1_lifetime_seconds: float = 3600.0
    #: How long a Phase-2 negotiation may wait for QKD bits to accumulate.
    phase2_timeout_seconds: float = 10.0
    #: Whether the QKD ("QPFS") extension is enabled at all.
    qkd_enabled: bool = True


@dataclass
class QkdKeyNegotiation:
    """Record of one Phase-2 negotiation's QKD accounting (the Qblock exchange)."""

    negotiation_id: int
    offered_qblocks: int
    granted_qblocks: int
    qkd_bits_used: int
    entropy_bits: float
    keymat_bytes: int
    cipher_suite: CipherSuite
    timed_out: bool = False


@dataclass
class Phase1State:
    """The ISAKMP (control channel) SA between the two daemons."""

    established_at: float
    skeyid: bytes
    lifetime_seconds: float
    initiator: str
    responder: str

    def expired(self, now: float) -> bool:
        return (now - self.established_at) >= self.lifetime_seconds


class IKEDaemon:
    """One gateway's IKE daemon (the modified 'racoon' of the paper)."""

    def __init__(
        self,
        config: IKEConfig,
        key_pool: KeyPool,
        sad: SecurityAssociationDatabase,
        rng: Optional[DeterministicRNG] = None,
    ):
        self.config = config
        self.key_pool = key_pool
        self.sad = sad
        self.rng = rng or DeterministicRNG(0)
        self.phase1: Optional[Phase1State] = None
        self.negotiations: List[QkdKeyNegotiation] = []
        self.log_lines: List[str] = []
        self._next_negotiation_id = 1
        self._next_spi = self.rng.randint(0x0100_0000, 0x0FFF_FFFF)

    # ------------------------------------------------------------------ #
    # Logging (racoon-style, so Fig 12 can be regenerated)
    # ------------------------------------------------------------------ #

    def _log(self, source: str, text: str) -> None:
        line = f"{self.config.gateway_name} racoon: INFO: {source}: {text}"
        self.log_lines.append(line)

    # ------------------------------------------------------------------ #
    # Phase 1
    # ------------------------------------------------------------------ #

    def establish_phase1(self, peer: "IKEDaemon", now: float = 0.0) -> Phase1State:
        """Main-mode Phase 1 with pre-shared-key authentication.

        Both daemons must be configured with the same pre-shared key; the
        derived SKEYID keys the Phase-2 PRF on both sides.
        """
        if self.config.preshared_key != peer.config.preshared_key:
            raise NegotiationError("phase 1 failed: pre-shared keys do not match")
        initiator_nonce = self.rng.getrandbits(128).to_bytes(16, "big")
        responder_nonce = peer.rng.getrandbits(128).to_bytes(16, "big")
        skeyid = hmac_sha1(self.config.preshared_key, initiator_nonce + responder_nonce)

        state = Phase1State(
            established_at=now,
            skeyid=skeyid,
            lifetime_seconds=self.config.phase1_lifetime_seconds,
            initiator=self.config.gateway_name,
            responder=peer.config.gateway_name,
        )
        self.phase1 = state
        peer.phase1 = state
        self._log(
            "isakmp.c:939:isakmp_ph1begin_i()",
            f"initiate new phase 1 negotiation: {self.config.address}[500]<=>{self.config.peer_address}[500]",
        )
        peer._log(
            "isakmp.c:1046:isakmp_ph1begin_r()",
            f"respond new phase 1 negotiation: {peer.config.address}[500]<=>{peer.config.peer_address}[500]",
        )
        self._log("isakmp.c:2432:log_ph1established()", "ISAKMP-SA established")
        peer._log("isakmp.c:2432:log_ph1established()", "ISAKMP-SA established")
        return state

    # ------------------------------------------------------------------ #
    # Phase 2 with the QKD (Qblock) extension
    # ------------------------------------------------------------------ #

    def _allocate_spi(self) -> int:
        self._next_spi += self.rng.randint(1, 0xFFFF)
        return self._next_spi

    def _qblocks_for_policy(self, policy: SecurityPolicy) -> int:
        """How many Qblocks the initiator offers for one rekey of this policy."""
        blocks = (policy.qkd_bits_per_rekey + QBLOCK_BITS - 1) // QBLOCK_BITS
        return max(blocks, 1)

    def negotiate_phase2(
        self,
        peer: "IKEDaemon",
        policy: SecurityPolicy,
        now: float = 0.0,
        qkd_wait_rate_bps: float = 0.0,
    ) -> Tuple[SecurityAssociation, SecurityAssociation]:
        """Run quick mode and install a fresh SA pair (one per direction).

        Both daemons draw the *same number* of bits from their (synchronised)
        key pools, which is how the real extension keeps the two ends keyed
        identically without ever sending key bits over the wire.

        ``qkd_wait_rate_bps`` models waiting for key to accumulate: if the
        pools currently hold fewer bits than the negotiation needs, the
        shortfall divided by this rate is the wait time, and exceeding the
        Phase-2 timeout raises :class:`NegotiationTimeout`.
        """
        if self.phase1 is None or peer.phase1 is None:
            raise NegotiationError("phase 2 attempted before phase 1 is established")
        if self.phase1.expired(now):
            raise NegotiationError("phase 1 SA has expired; renegotiate it first")

        negotiation_id = self._next_negotiation_id
        self._next_negotiation_id += 1

        self._log(
            "isakmp.c:939:isakmp_ph2begin_i()",
            f"initiate new phase 2 negotiation: {self.config.address}[0]<=>{self.config.peer_address}[0]",
        )
        peer._log(
            "isakmp.c:1046:isakmp_ph2begin_r()",
            f"respond new phase 2 negotiation: {peer.config.address}[0]<=>{peer.config.peer_address}[0]",
        )

        use_qkd = (
            self.config.qkd_enabled
            and peer.config.qkd_enabled
            and policy.cipher_suite is not CipherSuite.AES_CLASSICAL
        )
        if use_qkd:
            peer._log(
                "proposal.c:1023:set_proposal_from_policy()",
                "RESPONDER setting QPFS encmodesv 1",
            )

        # ---- Qblock offer / reply -------------------------------------- #
        offered_qblocks = self._qblocks_for_policy(policy) if use_qkd else 0
        needed_bits = offered_qblocks * QBLOCK_BITS
        if policy.cipher_suite is CipherSuite.ONE_TIME_PAD:
            # An OTP SA additionally needs pad material proportional to the
            # traffic it will protect before the next rollover; the policy's
            # Qblock request already sizes that.
            needed_bits = max(needed_bits, policy.qkd_bits_per_rekey)

        timed_out = False
        if use_qkd:
            shortfall = max(
                needed_bits - min(self.key_pool.available_bits, peer.key_pool.available_bits),
                0,
            )
            if shortfall > 0:
                if qkd_wait_rate_bps <= 0:
                    timed_out = True
                else:
                    wait_seconds = shortfall / qkd_wait_rate_bps
                    if wait_seconds > self.config.phase2_timeout_seconds:
                        timed_out = True
            if timed_out:
                negotiation = QkdKeyNegotiation(
                    negotiation_id=negotiation_id,
                    offered_qblocks=offered_qblocks,
                    granted_qblocks=0,
                    qkd_bits_used=0,
                    entropy_bits=0.0,
                    keymat_bytes=0,
                    cipher_suite=policy.cipher_suite,
                    timed_out=True,
                )
                self.negotiations.append(negotiation)
                peer.negotiations.append(negotiation)
                self._log(
                    "isakmp.c:1766:isakmp_ph2expire()",
                    "phase 2 negotiation failed: not enough QKD key material before timeout",
                )
                raise NegotiationTimeout(
                    f"needed {needed_bits} QKD bits, short by {shortfall}, "
                    f"timeout {self.config.phase2_timeout_seconds}s"
                )

            granted_qblocks = offered_qblocks
            qkd_bits = self.key_pool.draw_bits(needed_bits)
            peer_bits = peer.key_pool.draw_bits(needed_bits)
            peer._log(
                "bbn-qkd-qpd.c:1047:qke_create_reply()",
                f"reply {granted_qblocks} Qblocks {QBLOCK_BITS} bits "
                f"{float(needed_bits):.6f} entropy (offer is {offered_qblocks} Qblocks)",
            )
        else:
            granted_qblocks = 0
            qkd_bits = None
            peer_bits = None

        # ---- Nonces and KEYMAT derivation -------------------------------- #
        initiator_nonce = self.rng.getrandbits(128).to_bytes(16, "big")
        responder_nonce = peer.rng.getrandbits(128).to_bytes(16, "big")
        spi_out = self._allocate_spi()
        spi_in = peer._allocate_spi()

        keymat_bytes = policy.key_bits // 8 + 20  # cipher key + HMAC-SHA1 key
        if policy.cipher_suite is CipherSuite.ONE_TIME_PAD:
            keymat_bytes = 20  # only an integrity key; confidentiality is the pad

        def derive(skeyid: bytes, qkd_material, spi: int) -> bytes:
            seed = (
                (qkd_material.to_bytes() if qkd_material is not None else b"")
                + initiator_nonce
                + responder_nonce
                + spi.to_bytes(4, "big")
            )
            return prf_expand(skeyid, seed, keymat_bytes)

        keymat_out_local = derive(self.phase1.skeyid, qkd_bits, spi_out)
        keymat_out_peer = derive(peer.phase1.skeyid, peer_bits, spi_out)
        keymat_in_local = derive(self.phase1.skeyid, qkd_bits, spi_in)
        keymat_in_peer = derive(peer.phase1.skeyid, peer_bits, spi_in)

        if use_qkd:
            for daemon in (self, peer):
                daemon._log(
                    "oakley.c:473:oakley_compute_keymat_x()",
                    f"KEYMAT using {needed_bits // 8} bytes QBITS",
                )

        # A real deployment has no way to compare keymat directly; if the two
        # pools have diverged the SAs silently disagree and traffic fails
        # until rollover (the IKE blind spot the paper describes).  The model
        # preserves that behaviour by installing whatever each side derived.
        key_bits = policy.key_bits

        def split_pad_material(bits):
            """Halve the negotiated bits: one pad per traffic direction.

            Pad material may never be reused, so the two directions of the
            tunnel each get their own half of the negotiated Qblocks.
            """
            if bits is None:
                return None, None
            midpoint = (len(bits) // 2 // 8) * 8  # byte-align the split
            return bits[:midpoint], bits[midpoint:]

        local_pad_out, local_pad_in = split_pad_material(qkd_bits)
        peer_pad_out, peer_pad_in = split_pad_material(peer_bits)

        def build_sa(
            spi: int, source: str, destination: str, keymat: bytes, pad_bits
        ) -> SecurityAssociation:
            pad = None
            if policy.cipher_suite is CipherSuite.ONE_TIME_PAD:
                pad = OneTimePad(pad_bits.to_bytes() if pad_bits is not None else b"")
            return SecurityAssociation(
                spi=spi,
                source_gateway=source,
                destination_gateway=destination,
                cipher_suite=policy.cipher_suite,
                encryption_key=keymat[: key_bits // 8],
                authentication_key=keymat[-20:],
                created_at=now,
                lifetime_seconds=policy.lifetime_seconds,
                lifetime_kilobytes=policy.lifetime_kilobytes,
                pad=pad,
                negotiation_id=negotiation_id,
                policy_name=policy.name,
            )

        sa_outbound_local = build_sa(
            spi_out, self.config.gateway_name, peer.config.gateway_name, keymat_out_local, local_pad_out
        )
        sa_outbound_peer = build_sa(
            spi_out, self.config.gateway_name, peer.config.gateway_name, keymat_out_peer, peer_pad_out
        )
        sa_inbound_local = build_sa(
            spi_in, peer.config.gateway_name, self.config.gateway_name, keymat_in_local, local_pad_in
        )
        sa_inbound_peer = build_sa(
            spi_in, peer.config.gateway_name, self.config.gateway_name, keymat_in_peer, peer_pad_in
        )

        self.sad.install(sa_outbound_local)
        self.sad.install(sa_inbound_local)
        peer.sad.install(sa_outbound_peer)
        peer.sad.install(sa_inbound_peer)

        for daemon, outbound, inbound in (
            (self, sa_outbound_local, sa_inbound_local),
            (peer, sa_outbound_peer, sa_inbound_peer),
        ):
            daemon._log(
                "pfkey.c:1107:pk_recvupdate()",
                f"IPsec-SA established: ESP/Tunnel {self.config.address}->{self.config.peer_address} "
                f"spi={outbound.spi}(0x{outbound.spi:x})",
            )
            daemon._log(
                "pfkey.c:1319:pk_recvadd()",
                f"IPsec-SA established: ESP/Tunnel {self.config.peer_address}->{self.config.address} "
                f"spi={inbound.spi}(0x{inbound.spi:x})",
            )

        negotiation = QkdKeyNegotiation(
            negotiation_id=negotiation_id,
            offered_qblocks=offered_qblocks,
            granted_qblocks=granted_qblocks,
            qkd_bits_used=needed_bits if use_qkd else 0,
            entropy_bits=float(needed_bits if use_qkd else 0),
            keymat_bytes=keymat_bytes,
            cipher_suite=policy.cipher_suite,
        )
        self.negotiations.append(negotiation)
        peer.negotiations.append(negotiation)
        return sa_outbound_local, sa_inbound_local

    # ------------------------------------------------------------------ #

    @property
    def qkd_bits_consumed(self) -> int:
        """Total QKD bits this daemon has drawn for Phase-2 negotiations."""
        return sum(n.qkd_bits_used for n in self.negotiations if not n.timed_out)

    def __repr__(self) -> str:
        return (
            f"IKEDaemon({self.config.gateway_name}, negotiations={len(self.negotiations)}, "
            f"qkd_bits={self.qkd_bits_consumed})"
        )
