"""IP and ESP packet models.

The simulation does not push real packets through a kernel; it models the
fields the VPN data path actually manipulates — addresses for SPD selector
matching, payloads for encryption, and the ESP header fields (SPI, sequence
number) the receiving gateway needs to find the right Security Association
and enforce anti-replay.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass


@dataclass
class IPPacket:
    """A plaintext IP datagram as seen on the red (clear) side of a gateway."""

    source: str
    destination: str
    payload: bytes
    protocol: str = "tcp"
    identifier: int = 0

    def __post_init__(self) -> None:
        # Validate addresses early so policy lookups never see junk.
        ipaddress.ip_address(self.source)
        ipaddress.ip_address(self.destination)

    @property
    def size_bytes(self) -> int:
        """Payload size plus a nominal 20-byte IP header."""
        return len(self.payload) + 20

    def __repr__(self) -> str:
        return (
            f"IPPacket({self.source} -> {self.destination}, "
            f"{len(self.payload)} bytes, proto={self.protocol})"
        )


@dataclass
class ESPPacket:
    """An ESP tunnel-mode packet as seen on the black (protected) side.

    ``ciphertext`` carries the encrypted inner IP packet; ``auth_tag`` is the
    integrity check value computed over the ESP header and ciphertext.
    """

    spi: int
    sequence: int
    ciphertext: bytes
    auth_tag: bytes
    outer_source: str
    outer_destination: str
    iv: bytes = b""
    #: Cipher suite label recorded for reporting (the receiver uses the SA,
    #: looked up by SPI, as the authoritative source).
    cipher: str = ""

    @property
    def size_bytes(self) -> int:
        """Total on-the-wire size: outer IP + ESP header + IV + payload + ICV."""
        return 20 + 8 + len(self.iv) + len(self.ciphertext) + len(self.auth_tag)

    def header_bytes(self) -> bytes:
        """The authenticated ESP header fields (SPI and sequence number)."""
        return self.spi.to_bytes(4, "big") + self.sequence.to_bytes(4, "big")

    def __repr__(self) -> str:
        return (
            f"ESPPacket(spi=0x{self.spi:08x}, seq={self.sequence}, "
            f"{len(self.ciphertext)} bytes, cipher={self.cipher})"
        )
