"""Security Associations and the SAD.

A Security Association (SA) is a one-way agreement between the two gateways:
an SPI, a cipher suite, key material, and a lifetime.  "Every security
association has a maximum lifetime which governs how long the key material
for that association can be used.  This lifetime can be expressed either in
time (seconds) or in data encrypted (kilobytes) ...  Every time the lifetime
expires, a new security association must be negotiated and it will bring with
it fresh key material.  This is sometimes termed 'key rollover'." (paper §7)

For one-time-pad SAs the "key material" is a dedicated pad pool that both
gateways fill from negotiated QKD bits; the SA is also exhausted (and must
roll over) when the pad runs out, which the gateway benchmarks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.otp import OneTimePad
from repro.ipsec.spd import CipherSuite


@dataclass
class SecurityAssociation:
    """One unidirectional SA."""

    spi: int
    source_gateway: str
    destination_gateway: str
    cipher_suite: CipherSuite
    encryption_key: bytes = b""
    authentication_key: bytes = b""
    created_at: float = 0.0
    lifetime_seconds: float = 60.0
    lifetime_kilobytes: int = 0
    #: Pad pool for one-time-pad SAs (unused for AES suites).
    pad: Optional[OneTimePad] = None
    #: Which IKE phase-2 negotiation created this SA, for the Fig 12 style log.
    negotiation_id: int = -1
    #: Name of the SPD policy this SA serves; traffic for a different policy
    #: must never reuse it (each tunnel has "its own set of cryptographic
    #: algorithms, keys, rekey rates, and so forth").
    policy_name: str = ""

    sequence_number: int = 0
    bytes_protected: int = 0
    packets_protected: int = 0
    #: Highest sequence number accepted by the receiver (simple anti-replay).
    highest_received_sequence: int = 0

    # ------------------------------------------------------------------ #

    def next_sequence(self) -> int:
        self.sequence_number += 1
        return self.sequence_number

    def record_traffic(self, payload_bytes: int) -> None:
        self.bytes_protected += payload_bytes
        self.packets_protected += 1

    def accept_sequence(self, sequence: int) -> bool:
        """Anti-replay: accept only strictly increasing sequence numbers."""
        if sequence <= self.highest_received_sequence:
            return False
        self.highest_received_sequence = sequence
        return True

    # ------------------------------------------------------------------ #
    # Lifetime management
    # ------------------------------------------------------------------ #

    def time_expired(self, now: float) -> bool:
        return (now - self.created_at) >= self.lifetime_seconds

    def volume_expired(self) -> bool:
        if self.lifetime_kilobytes <= 0:
            return False
        return self.bytes_protected >= self.lifetime_kilobytes * 1024

    def pad_exhausted(self) -> bool:
        if self.cipher_suite is not CipherSuite.ONE_TIME_PAD or self.pad is None:
            return False
        return self.pad.available_bytes == 0

    def expired(self, now: float) -> bool:
        """Whether this SA may no longer protect traffic."""
        return self.time_expired(now) or self.volume_expired() or self.pad_exhausted()

    def __repr__(self) -> str:
        return (
            f"SA(spi=0x{self.spi:08x}, {self.source_gateway}->{self.destination_gateway}, "
            f"{self.cipher_suite.value}, protected={self.bytes_protected}B)"
        )


@dataclass
class SecurityAssociationDatabase:
    """The SAD: SAs indexed by SPI plus lookup by traffic direction."""

    by_spi: Dict[int, SecurityAssociation] = field(default_factory=dict)
    #: History of expired/replaced SAs, kept for the rollover statistics.
    retired: List[SecurityAssociation] = field(default_factory=list)

    def install(self, sa: SecurityAssociation) -> None:
        if sa.spi in self.by_spi:
            raise ValueError(f"an SA with SPI 0x{sa.spi:08x} is already installed")
        self.by_spi[sa.spi] = sa

    def lookup_spi(self, spi: int) -> Optional[SecurityAssociation]:
        return self.by_spi.get(spi)

    def outbound_sa(
        self,
        source_gateway: str,
        destination_gateway: str,
        now: float,
        policy_name: Optional[str] = None,
    ) -> Optional[SecurityAssociation]:
        """The freshest unexpired SA for the given direction (and policy), if any."""
        candidates = [
            sa
            for sa in self.by_spi.values()
            if sa.source_gateway == source_gateway
            and sa.destination_gateway == destination_gateway
            and not sa.expired(now)
            and (policy_name is None or sa.policy_name == policy_name)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda sa: sa.created_at)

    def retire(self, spi: int) -> None:
        sa = self.by_spi.pop(spi, None)
        if sa is not None:
            self.retired.append(sa)

    def retire_expired(self, now: float) -> List[SecurityAssociation]:
        """Remove every expired SA; returns the ones retired."""
        expired = [sa for sa in self.by_spi.values() if sa.expired(now)]
        for sa in expired:
            self.retire(sa.spi)
        return expired

    @property
    def active_count(self) -> int:
        return len(self.by_spi)

    @property
    def rollover_count(self) -> int:
        """How many SAs have been retired over the gateway's lifetime."""
        return len(self.retired)

    def __len__(self) -> int:
        return len(self.by_spi)
