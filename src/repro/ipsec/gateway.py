"""The QKD-keyed VPN gateway (paper Figs 2, 10, 11).

A :class:`VPNGateway` is one of the "cryptographic gateways" at the edge of a
private enclave: plaintext ("red") traffic enters, the Security Policy
Database decides how it must be protected, the gateway finds or negotiates a
Security Association for it, and ESP processing emits protected ("black")
traffic toward the peer gateway.  Key material for the SAs comes from the
gateway's QKD key pool through the IKE daemon's QKD extension.

:class:`GatewayPair` wires two gateways together back-to-back (with the same
synchronised key pools a real QKD link delivers to both ends) and gives the
examples and benchmarks a single object that can push traffic through the
tunnel, advance simulated time, and trigger key rollover — the complete
"VPN between private enclaves, with user traffic protected by ... quantum
cryptography" of the paper's abstract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.keypool import KeyPool
from repro.ipsec.esp import EspError, EspProcessor
from repro.ipsec.ike import IKEConfig, IKEDaemon, NegotiationError
from repro.ipsec.packets import ESPPacket, IPPacket
from repro.ipsec.sad import SecurityAssociation, SecurityAssociationDatabase
from repro.ipsec.spd import PolicyAction, SecurityPolicy, SecurityPolicyDatabase
from repro.sim.clock import SimClock
from repro.util.rng import DeterministicRNG


@dataclass
class GatewayStatistics:
    """Traffic and key accounting for one gateway."""

    packets_sent: int = 0
    packets_received: int = 0
    packets_bypassed: int = 0
    packets_discarded: int = 0
    bytes_protected: int = 0
    negotiations: int = 0
    negotiation_failures: int = 0
    rollovers: int = 0
    decryption_failures: int = 0


class VPNGateway:
    """One enclave-edge cryptographic gateway."""

    def __init__(
        self,
        name: str,
        address: str,
        peer_address: str,
        key_pool: KeyPool,
        clock: Optional[SimClock] = None,
        rng: Optional[DeterministicRNG] = None,
    ):
        self.name = name
        self.address = address
        self.peer_address = peer_address
        self.key_pool = key_pool
        self.clock = clock or SimClock()
        self.rng = rng or DeterministicRNG(0)

        self.spd = SecurityPolicyDatabase()
        self.sad = SecurityAssociationDatabase()
        self.ike = IKEDaemon(
            IKEConfig(gateway_name=name, address=address, peer_address=peer_address),
            key_pool=key_pool,
            sad=self.sad,
            rng=self.rng.fork("ike"),
        )
        self.esp = EspProcessor(self.rng.fork("esp"))
        self.statistics = GatewayStatistics()
        self.peer: Optional["VPNGateway"] = None

    # ------------------------------------------------------------------ #
    # Wiring and policy
    # ------------------------------------------------------------------ #

    def connect_peer(self, peer: "VPNGateway") -> None:
        self.peer = peer
        peer.peer = self

    def add_policy(self, policy: SecurityPolicy) -> None:
        self.spd.add(policy)

    # ------------------------------------------------------------------ #
    # Key management
    # ------------------------------------------------------------------ #

    def establish_control_channel(self) -> None:
        """Run IKE Phase 1 with the peer gateway."""
        if self.peer is None:
            raise RuntimeError("gateway has no peer connected")
        self.ike.establish_phase1(self.peer.ike, now=self.clock.now())

    def _ensure_outbound_sa(self, policy: SecurityPolicy) -> SecurityAssociation:
        """Find a live outbound SA for the policy, negotiating one if needed."""
        if self.peer is None:
            raise RuntimeError("gateway has no peer connected")
        now = self.clock.now()
        sa = self.sad.outbound_sa(self.name, self.peer.name, now, policy_name=policy.name)
        if sa is not None and not sa.expired(now):
            return sa
        # Retire anything stale on both ends, then negotiate afresh.
        retired_here = self.sad.retire_expired(now)
        self.peer.sad.retire_expired(now)
        if retired_here:
            self.statistics.rollovers += 1
        try:
            outbound, _inbound = self.ike.negotiate_phase2(
                self.peer.ike, policy, now=now
            )
        except NegotiationError:
            self.statistics.negotiation_failures += 1
            raise
        self.statistics.negotiations += 1
        return outbound

    def rekey_now(self, policy_name: str) -> SecurityAssociation:
        """Force an immediate rollover for a policy (used by the rekey timer)."""
        policy = self.spd.policy_by_name(policy_name)
        now = self.clock.now()
        for sa in list(self.sad.by_spi.values()):
            if sa.policy_name == policy.name:
                self.sad.retire(sa.spi)
        if self.peer is not None:
            for sa in list(self.peer.sad.by_spi.values()):
                if sa.policy_name == policy.name:
                    self.peer.sad.retire(sa.spi)
        self.statistics.rollovers += 1
        outbound, _ = self.ike.negotiate_phase2(self.peer.ike, policy, now=now)
        self.statistics.negotiations += 1
        return outbound

    # ------------------------------------------------------------------ #
    # Traffic path
    # ------------------------------------------------------------------ #

    def send(self, packet: IPPacket) -> Optional[ESPPacket]:
        """Process an outbound plaintext packet from the red side.

        Returns the ESP packet placed on the black network (or None for
        bypassed/discarded traffic).
        """
        policy = self.spd.lookup(packet.source, packet.destination)
        if policy is None or policy.action is PolicyAction.DISCARD:
            self.statistics.packets_discarded += 1
            return None
        if policy.action is PolicyAction.BYPASS:
            self.statistics.packets_bypassed += 1
            return None

        sa = self._ensure_outbound_sa(policy)
        esp = self.esp.encapsulate(packet, sa, self.address, self.peer_address)
        self.statistics.packets_sent += 1
        self.statistics.bytes_protected += len(packet.payload)
        return esp

    def receive(self, esp: ESPPacket) -> IPPacket:
        """Process an inbound ESP packet from the black side."""
        sa = self.sad.lookup_spi(esp.spi)
        if sa is None:
            self.statistics.decryption_failures += 1
            raise EspError(f"no SA installed for SPI 0x{esp.spi:08x}")
        try:
            packet = self.esp.decapsulate(esp, sa)
        except EspError:
            self.statistics.decryption_failures += 1
            raise
        self.statistics.packets_received += 1
        return packet

    def __repr__(self) -> str:
        return (
            f"VPNGateway({self.name}, SAs={self.sad.active_count}, "
            f"sent={self.statistics.packets_sent}, key={self.key_pool.available_bits} bits)"
        )


class GatewayPair:
    """Two gateways joined by both a QKD link's key pools and a black network."""

    def __init__(
        self,
        alice_pool: KeyPool,
        bob_pool: KeyPool,
        clock: Optional[SimClock] = None,
        rng: Optional[DeterministicRNG] = None,
        alice_name: str = "alice-gw",
        bob_name: str = "bob-gw",
        alice_address: str = "192.1.99.34",
        bob_address: str = "192.1.99.35",
    ):
        self.clock = clock or SimClock()
        rng = rng or DeterministicRNG(0)
        self.alice = VPNGateway(
            alice_name, alice_address, bob_address, alice_pool, self.clock, rng.fork("alice")
        )
        self.bob = VPNGateway(
            bob_name, bob_address, alice_address, bob_pool, self.clock, rng.fork("bob")
        )
        self.alice.connect_peer(self.bob)
        self.delivered: List[IPPacket] = []
        self.transport_failures = 0

    @classmethod
    def from_engine(
        cls,
        engine,
        clock: Optional[SimClock] = None,
        rng: Optional[DeterministicRNG] = None,
        **kwargs,
    ) -> "GatewayPair":
        """Wire a gateway pair onto a QKD protocol engine's two key pools.

        ``engine`` is a :class:`repro.core.engine.QKDProtocolEngine` (typed
        loosely to keep this module independent of the engine); its Alice and
        Bob pools become the gateways' key sources, which is exactly the
        paper's "VPN / OPC interface" hand-off.
        """
        return cls(engine.alice_pool, engine.bob_pool, clock=clock, rng=rng, **kwargs)

    @classmethod
    def provision_many(
        cls,
        n_pairs: int,
        slots_per_link: int = 250_000,
        link_parameters=None,
        rng: Optional[DeterministicRNG] = None,
        workers: Optional[int] = None,
        backend: str = "process",
    ) -> List["GatewayPair"]:
        """Bring up a fleet of enclave pairs, distilling every link in parallel.

        The scenario behind the paper's Fig 2 picture at scale: ``n_pairs``
        private-enclave pairs, each keyed by its own QKD link.  The links
        are simulated concurrently through :class:`repro.runtime.LinkFarm`
        (each link rebuilt in a worker from a labeled-fork seed), then each
        pair of freshly filled pools is wired into a :class:`GatewayPair`.
        The fleet's key material depends only on the root ``rng`` seed and
        the pair index — never on ``workers`` — so scenarios scale across
        cores without losing reproducibility.

        Each pair gets distinct gateway names/addresses (``gw-<i>-a/b``,
        ``10.<i>.0.1/2``) and its own clock; policies and IKE bring-up are
        left to the caller.
        """
        from repro.runtime.farm import LinkFarm

        if n_pairs < 0:
            raise ValueError("pair count must be non-negative")
        rng = rng or DeterministicRNG(0)
        farm = LinkFarm(workers=workers, backend=backend)
        jobs = LinkFarm.jobs(
            n_pairs,
            slots_per_link,
            parameters=link_parameters,
            rng=rng,
            name_prefix="gateway-link",
        )
        pairs: List["GatewayPair"] = []
        for index, run in enumerate(farm.run(jobs)):
            pairs.append(
                cls(
                    run.alice_pool,
                    run.bob_pool,
                    rng=rng.fork_labeled(f"gateway-pair/{index}"),
                    alice_name=f"gw-{index}-a",
                    bob_name=f"gw-{index}-b",
                    alice_address=f"10.{index}.0.1",
                    bob_address=f"10.{index}.0.2",
                )
            )
        return pairs

    # ------------------------------------------------------------------ #

    def add_symmetric_policy(self, policy: SecurityPolicy, reverse_name: Optional[str] = None) -> None:
        """Install the policy at Alice and its mirror image at Bob."""
        self.alice.add_policy(policy)
        mirrored = SecurityPolicy(
            name=reverse_name or f"{policy.name}-reverse",
            source_network=policy.destination_network,
            destination_network=policy.source_network,
            action=policy.action,
            cipher_suite=policy.cipher_suite,
            key_bits=policy.key_bits,
            lifetime_seconds=policy.lifetime_seconds,
            lifetime_kilobytes=policy.lifetime_kilobytes,
            qkd_bits_per_rekey=policy.qkd_bits_per_rekey,
        )
        self.bob.add_policy(mirrored)

    def establish(self) -> None:
        """Bring up the control channel (IKE Phase 1) between the gateways."""
        self.alice.establish_control_channel()

    def transmit(self, packet: IPPacket, from_alice: bool = True) -> Optional[IPPacket]:
        """Push one packet through the tunnel and return what the far side delivered."""
        sender = self.alice if from_alice else self.bob
        receiver = self.bob if from_alice else self.alice
        esp = sender.send(packet)
        if esp is None:
            return None
        try:
            delivered = receiver.receive(esp)
        except EspError:
            self.transport_failures += 1
            return None
        self.delivered.append(delivered)
        return delivered

    def advance_time(self, seconds: float) -> None:
        self.clock.advance(seconds)

    @property
    def combined_log(self) -> List[str]:
        """Both IKE daemons' racoon-style logs, interleaved in emission order."""
        return self.alice.ike.log_lines + self.bob.ike.log_lines
