"""ESP tunnel-mode packet processing.

The encryption path of the VPN gateway: given an outbound plaintext packet
and the Security Association chosen for it, produce the ESP packet that goes
onto the untrusted network; given an inbound ESP packet, verify and decrypt
it back into the original plaintext packet.  Three cipher suites are
supported, matching the SPD's :class:`CipherSuite`:

* AES (QKD-reseeded or classical) in CBC mode with an HMAC-SHA1 integrity
  check value, the conventional ESP construction;
* the one-time-pad extension, where the payload is XORed with pad bytes from
  the SA's negotiated QKD pad pool and integrity still comes from HMAC-SHA1
  (the pad protects confidentiality; an information-theoretic MAC could be
  substituted by a policy that cares).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.crypto.aes import AES
from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.crypto.otp import PadExhaustedError
from repro.crypto.sha1 import hmac_sha1
from repro.ipsec.packets import ESPPacket, IPPacket
from repro.ipsec.sad import SecurityAssociation
from repro.ipsec.spd import CipherSuite
from repro.util.rng import DeterministicRNG

#: Length of the truncated HMAC-SHA1 integrity check value, per RFC 2404.
ICV_BYTES = 12


class EspError(Exception):
    """Raised when an ESP packet fails authentication, replay or decryption."""


def _serialise_inner(packet: IPPacket) -> bytes:
    header = json.dumps(
        {
            "src": packet.source,
            "dst": packet.destination,
            "proto": packet.protocol,
            "id": packet.identifier,
        },
        sort_keys=True,
    ).encode()
    return len(header).to_bytes(2, "big") + header + packet.payload


def _deserialise_inner(data: bytes) -> IPPacket:
    header_length = int.from_bytes(data[:2], "big")
    header = json.loads(data[2 : 2 + header_length].decode())
    payload = data[2 + header_length :]
    return IPPacket(
        source=header["src"],
        destination=header["dst"],
        payload=payload,
        protocol=header["proto"],
        identifier=header["id"],
    )


class EspProcessor:
    """Encapsulates and decapsulates ESP packets for one gateway."""

    def __init__(self, rng: Optional[DeterministicRNG] = None):
        self.rng = rng or DeterministicRNG(0)
        self.packets_encapsulated = 0
        self.packets_decapsulated = 0
        self.authentication_failures = 0
        self.replay_rejections = 0
        self.pad_failures = 0

    # ------------------------------------------------------------------ #
    # Outbound
    # ------------------------------------------------------------------ #

    def encapsulate(
        self,
        packet: IPPacket,
        sa: SecurityAssociation,
        outer_source: str,
        outer_destination: str,
    ) -> ESPPacket:
        """Protect a plaintext packet under the given SA."""
        inner = _serialise_inner(packet)
        sequence = sa.next_sequence()

        if sa.cipher_suite is CipherSuite.ONE_TIME_PAD:
            if sa.pad is None:
                raise EspError("one-time-pad SA has no pad pool")
            try:
                ciphertext = sa.pad.encrypt(inner)
            except PadExhaustedError as exc:
                self.pad_failures += 1
                raise EspError(f"one-time pad exhausted: {exc}") from exc
            iv = b""
        else:
            iv = self.rng.getrandbits(128).to_bytes(16, "big")
            cipher = AES(sa.encryption_key)
            ciphertext = cbc_encrypt(cipher, inner, iv)

        header = sa.spi.to_bytes(4, "big") + sequence.to_bytes(4, "big")
        tag = hmac_sha1(sa.authentication_key, header + iv + ciphertext)[:ICV_BYTES]

        sa.record_traffic(len(packet.payload))
        self.packets_encapsulated += 1
        return ESPPacket(
            spi=sa.spi,
            sequence=sequence,
            ciphertext=ciphertext,
            auth_tag=tag,
            outer_source=outer_source,
            outer_destination=outer_destination,
            iv=iv,
            cipher=sa.cipher_suite.value,
        )

    # ------------------------------------------------------------------ #
    # Inbound
    # ------------------------------------------------------------------ #

    def decapsulate(self, esp: ESPPacket, sa: SecurityAssociation) -> IPPacket:
        """Verify and decrypt an inbound ESP packet under the given SA."""
        expected = hmac_sha1(
            sa.authentication_key, esp.header_bytes() + esp.iv + esp.ciphertext
        )[:ICV_BYTES]
        if expected != esp.auth_tag:
            self.authentication_failures += 1
            raise EspError(
                f"integrity check failed for SPI 0x{esp.spi:08x} "
                "(corrupted packet, or the two gateways' keys disagree)"
            )
        if not sa.accept_sequence(esp.sequence):
            self.replay_rejections += 1
            raise EspError(f"replayed or reordered sequence number {esp.sequence}")

        if sa.cipher_suite is CipherSuite.ONE_TIME_PAD:
            if sa.pad is None:
                raise EspError("one-time-pad SA has no pad pool")
            try:
                inner = sa.pad.decrypt(esp.ciphertext)
            except PadExhaustedError as exc:
                self.pad_failures += 1
                raise EspError(f"one-time pad exhausted: {exc}") from exc
        else:
            cipher = AES(sa.encryption_key)
            try:
                inner = cbc_decrypt(cipher, esp.ciphertext, esp.iv)
            except ValueError as exc:
                self.authentication_failures += 1
                raise EspError(f"decryption failed: {exc}") from exc

        self.packets_decapsulated += 1
        try:
            return _deserialise_inner(inner)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            raise EspError(f"inner packet is not parseable after decryption: {exc}") from exc
