"""The Security Policy Database (SPD).

RFC 2401's SPD decides, for every packet, whether it must be protected,
bypassed or discarded, and with what parameters.  The paper's extensions add
per-tunnel policy about *how* QKD key material is used: "policy mechanisms to
specify when either of these extensions should be used, on a per-tunnel
basis" — i.e. whether a tunnel uses conventional AES with continual QKD
reseeding, or a pure one-time pad, along with key sizes, rekey intervals and
SA lifetimes.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import List, Optional


class PolicyAction(enum.Enum):
    """What to do with a matching packet."""

    PROTECT = "protect"
    BYPASS = "bypass"
    DISCARD = "discard"


class CipherSuite(enum.Enum):
    """How a protected tunnel uses its key material (the paper's two extensions)."""

    #: Conventional symmetric cipher (AES) whose keys are derived from QKD
    #: bits and refreshed continually — the "rapid-reseeding" extension.
    AES_QKD_RESEED = "aes-qkd-reseed"
    #: Every payload byte is XORed with fresh QKD bits — the one-time-pad
    #: extension ("Vernam cipher").
    ONE_TIME_PAD = "one-time-pad"
    #: Plain IKE-derived AES with no QKD at all (the conventional baseline the
    #: benchmarks compare against).
    AES_CLASSICAL = "aes-classical"


@dataclass
class SecurityPolicy:
    """One SPD entry."""

    name: str
    source_network: str
    destination_network: str
    action: PolicyAction = PolicyAction.PROTECT
    cipher_suite: CipherSuite = CipherSuite.AES_QKD_RESEED
    #: AES key size in bits for the AES suites (128/192/256).
    key_bits: int = 128
    #: SA lifetime in seconds ("key rollover" interval); the paper reseeds the
    #: AES keys "about once a minute".
    lifetime_seconds: float = 60.0
    #: SA lifetime in kilobytes of protected traffic (0 disables the limit).
    lifetime_kilobytes: int = 0
    #: QKD bits requested per Phase-2 negotiation (the Qblock size offered).
    qkd_bits_per_rekey: int = 1024

    def __post_init__(self) -> None:
        ipaddress.ip_network(self.source_network)
        ipaddress.ip_network(self.destination_network)
        if self.key_bits not in (128, 192, 256):
            raise ValueError("AES key size must be 128, 192 or 256 bits")
        if self.lifetime_seconds <= 0:
            raise ValueError("SA lifetime must be positive")
        if self.lifetime_kilobytes < 0:
            raise ValueError("kilobyte lifetime must be non-negative")
        if self.qkd_bits_per_rekey <= 0:
            raise ValueError("Qblock size must be positive")

    def matches(self, source: str, destination: str) -> bool:
        """Does this policy cover a packet with the given addresses?"""
        return ipaddress.ip_address(source) in ipaddress.ip_network(
            self.source_network
        ) and ipaddress.ip_address(destination) in ipaddress.ip_network(
            self.destination_network
        )


@dataclass
class SecurityPolicyDatabase:
    """An ordered list of policies; first match wins, default is DISCARD.

    Defaulting to discard (rather than bypass) mirrors the fail-closed posture
    a cryptographic gateway for sensitive enclaves must take.
    """

    policies: List[SecurityPolicy] = field(default_factory=list)

    def add(self, policy: SecurityPolicy) -> None:
        if any(existing.name == policy.name for existing in self.policies):
            raise ValueError(f"a policy named {policy.name!r} already exists")
        self.policies.append(policy)

    def remove(self, name: str) -> None:
        before = len(self.policies)
        self.policies = [p for p in self.policies if p.name != name]
        if len(self.policies) == before:
            raise KeyError(name)

    def lookup(self, source: str, destination: str) -> Optional[SecurityPolicy]:
        """The first policy matching the packet, or None (treated as discard)."""
        for policy in self.policies:
            if policy.matches(source, destination):
                return policy
        return None

    def policy_by_name(self, name: str) -> SecurityPolicy:
        for policy in self.policies:
            if policy.name == name:
                return policy
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.policies)
