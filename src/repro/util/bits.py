"""A compact, immutable bit-string type used throughout the QKD stack.

Every stage of the QKD protocol pipeline (sifting, Cascade error correction,
privacy amplification, authentication) manipulates sequences of bits: raw key
symbols, sifted keys, parity subsets, hash outputs.  ``BitString`` gives those
stages a single well-tested representation with the operations they need:

* bitwise XOR (used for parity computation and one-time-pad encryption),
* parity of arbitrary subsets,
* slicing and concatenation,
* conversion to and from ``bytes`` and ``int``,
* Hamming distance and error counting between Alice's and Bob's keys.

Packed representation
---------------------

The class stores the bits *packed* into a single arbitrary-precision Python
integer plus an explicit length.  **Bit order invariant:** bit ``i`` of the
string is bit ``length - 1 - i`` of the integer — i.e. the string reads
most-significant-bit first, so ``BitString.from_int(v, n).to_int() == v`` and
the packed value *is* the ``to_int()`` value.  This makes the whole-string
operations machine-word arithmetic on CPython's int limbs:

===============================  ============================================
operation                        cost
===============================  ============================================
``^``, ``&``, ``~``, equality    O(n / 64) word ops
``popcount`` / ``parity``        O(n / 64) via ``int.bit_count()``
``masked_parity``                O(n / 64) (AND then popcount)
``hamming_distance``             O(n / 64) (XOR then popcount)
``to_int`` / ``from_int``        O(1) / O(1) (value is stored packed)
``to_bytes`` / ``from_bytes``    O(n / 64) via ``int.to_bytes``
slicing (step 1), ``+``          O(n / 64) shift-and-mask
iteration, ``to_list``           O(n) through a C-level binary string
===============================  ============================================

A pure-tuple reference implementation with the same public API is retained in
:mod:`repro.util.bits_reference`; the differential test suite pins the two
implementations against each other on randomized inputs.
"""

from __future__ import annotations

from itertools import groupby
from typing import Iterable, Iterator, List, Sequence, Union

import numpy as _np


class BitString:
    """An immutable sequence of bits with cryptographic convenience methods.

    Internally a pair ``(_value, _length)``: ``_value`` holds the bits packed
    most-significant-bit first (bit ``i`` of the string is bit
    ``_length - 1 - i`` of ``_value``), so ``_value == self.to_int()``.
    """

    __slots__ = ("_value", "_length")

    def __init__(self, bits: Iterable[int] = ()):
        values = [int(b) for b in bits]
        for value in values:
            if value not in (0, 1):
                raise ValueError(f"bit values must be 0 or 1, got {value}")
        self._length = len(values)
        # int(str, 2) packs the list at C speed; the digits are already 0/1.
        self._value = int("".join(map(str, values)), 2) if values else 0

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def _from_packed(cls, value: int, length: int) -> "BitString":
        """Internal constructor from an already-validated packed value."""
        self = object.__new__(cls)
        self._value = value
        self._length = length
        return self

    @classmethod
    def from_packed(cls, value: int, length: int) -> "BitString":
        """Build a bit string directly from its packed integer value.

        Equivalent to :meth:`from_int` (most-significant bit first); exposed
        under this name so call sites that already hold packed words can say
        what they mean.
        """
        return cls.from_int(value, length)

    @classmethod
    def zeros(cls, n: int) -> "BitString":
        """Return a bit string of ``n`` zero bits."""
        if n < 0:
            raise ValueError("length must be non-negative")
        return cls._from_packed(0, n)

    @classmethod
    def ones(cls, n: int) -> "BitString":
        """Return a bit string of ``n`` one bits."""
        if n < 0:
            raise ValueError("length must be non-negative")
        return cls._from_packed((1 << n) - 1, n)

    @classmethod
    def from_int(cls, value: int, length: int) -> "BitString":
        """Build a bit string from an integer, most-significant bit first."""
        if value < 0:
            raise ValueError("value must be non-negative")
        if length < 0:
            raise ValueError("length must be non-negative")
        if length and value >> length:
            raise ValueError(f"value {value} does not fit in {length} bits")
        if length == 0 and value:
            raise ValueError("cannot encode a non-zero value in zero bits")
        return cls._from_packed(value, length)

    @classmethod
    def from_int_lsb(cls, value: int, length: int) -> "BitString":
        """Build a bit string from an integer packed least-significant-bit first.

        Bit ``i`` of ``value`` becomes bit ``i`` of the string — the inverse
        of :meth:`to_int_lsb`, and the orientation Cascade's subset masks and
        :class:`repro.mathkit.gf2.GF2Matrix` rows use.
        """
        if value < 0:
            raise ValueError("value must be non-negative")
        if length < 0:
            raise ValueError("length must be non-negative")
        if value >> length:
            raise ValueError(f"value {value} does not fit in {length} bits")
        if length == 0:
            return cls()
        return cls._from_packed(int(format(value, f"0{length}b")[::-1], 2), length)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BitString":
        """Build a bit string from bytes, most-significant bit of each byte first."""
        return cls._from_packed(int.from_bytes(data, "big"), 8 * len(data))

    @classmethod
    def from_str(cls, text: str) -> "BitString":
        """Build a bit string from a string of ``'0'``/``'1'`` characters."""
        cleaned = text.replace(" ", "").replace("_", "")
        if any(ch not in "01" for ch in cleaned):
            raise ValueError(f"not a binary string: {text!r}")
        return cls._from_packed(int(cleaned, 2) if cleaned else 0, len(cleaned))

    @classmethod
    def random(cls, n: int, rng) -> "BitString":
        """Draw ``n`` uniformly random bits from ``rng`` (anything with ``getrandbits``)."""
        if n < 0:
            raise ValueError("length must be non-negative")
        if n == 0:
            return cls()
        value = rng.getrandbits(n)
        return cls.from_int(value, n)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    def to_int(self) -> int:
        """Interpret the bit string as an integer, most-significant bit first."""
        return self._value

    def to_int_lsb(self) -> int:
        """The bits packed least-significant-bit first (bit ``i`` at position ``i``).

        This is the orientation :class:`repro.mathkit.gf2.GF2Matrix` and the
        Cascade mask arithmetic use, where "column j" is bit ``j`` of a word.
        """
        if self._length == 0:
            return 0
        return int(format(self._value, f"0{self._length}b")[::-1], 2)

    def to_bytes(self) -> bytes:
        """Pack into bytes (zero-padded on the right to a byte boundary)."""
        if not self._length:
            return b""
        n_bytes = (self._length + 7) // 8
        return (self._value << (n_bytes * 8 - self._length)).to_bytes(n_bytes, "big")

    def to_list(self) -> List[int]:
        """Return the bits as a plain mutable list."""
        return [1 if ch == "1" else 0 for ch in self._bin()]

    def one_indices(self) -> List[int]:
        """Indices of the one bits, ascending (e.g. Cascade subset positions).

        Runs on packed words: the value is rendered to bytes once and the
        positions come from one ``np.unpackbits``/``np.flatnonzero`` pass —
        Cascade expands two subset masks per disclosed parity through here,
        so the per-bit string scan this replaces was a measurable slice of
        every reconciliation.
        """
        return self.one_indices_array().tolist()

    def one_indices_array(self) -> "_np.ndarray":
        """The one-bit indices as an ``np.int64`` array (no list round trip).

        Cascade keeps each subset's member indices in this form so bisection
        can slice O(1) views out of it.
        """
        if self._length == 0:
            return _np.zeros(0, dtype=_np.int64)
        n_bytes = (self._length + 7) // 8
        data = (self._value << (n_bytes * 8 - self._length)).to_bytes(n_bytes, "big")
        bits = _np.unpackbits(_np.frombuffer(data, dtype=_np.uint8), count=self._length)
        return _np.flatnonzero(bits)

    def copy(self) -> "BitString":
        """Return an independent ``BitString`` instance with the same bits.

        ``BitString`` is immutable, so aliasing is never unsafe — but key
        material handed to two protocol endpoints must not share an object,
        so that each endpoint's state is verifiably self-contained.  Only the
        wrapper object is new; this is O(1) and skips re-validation.
        """
        return BitString._from_packed(self._value, self._length)

    def _bin(self) -> str:
        """The bits as a ``'0'``/``'1'`` string (C-speed int formatting)."""
        if self._length == 0:
            return ""
        return format(self._value, f"0{self._length}b")

    def __str__(self) -> str:
        return self._bin()

    def __repr__(self) -> str:
        if self._length <= 64:
            return f"BitString('{self}')"
        head = self._bin()[:32]
        return f"BitString('{head}...', len={self._length})"

    # ------------------------------------------------------------------ #
    # Sequence protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_list())

    def __getitem__(self, index: Union[int, slice]) -> Union[int, "BitString"]:
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step == 1:
                if stop <= start:
                    return BitString._from_packed(0, 0)
                width = stop - start
                value = (self._value >> (self._length - stop)) & ((1 << width) - 1)
                return BitString._from_packed(value, width)
            # Arbitrary strides are rare; go through the bit list.
            bits = self.to_list()[index]
            return BitString._from_packed(
                int("".join(map(str, bits)), 2) if bits else 0, len(bits)
            )
        pos = index
        if pos < 0:
            pos += self._length
        if not 0 <= pos < self._length:
            raise IndexError("BitString index out of range")
        return (self._value >> (self._length - 1 - pos)) & 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitString):
            return self._length == other._length and self._value == other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._length, self._value))

    def __add__(self, other: "BitString") -> "BitString":
        if not isinstance(other, BitString):
            return NotImplemented
        return BitString._from_packed(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    def __bool__(self) -> bool:
        return self._length > 0

    # ------------------------------------------------------------------ #
    # Bitwise operations
    # ------------------------------------------------------------------ #

    def __xor__(self, other: "BitString") -> "BitString":
        if not isinstance(other, BitString):
            return NotImplemented
        if other._length != self._length:
            raise ValueError(
                f"XOR requires equal lengths ({self._length} vs {other._length})"
            )
        return BitString._from_packed(self._value ^ other._value, self._length)

    def __and__(self, other: "BitString") -> "BitString":
        if not isinstance(other, BitString):
            return NotImplemented
        if other._length != self._length:
            raise ValueError(
                f"AND requires equal lengths ({self._length} vs {other._length})"
            )
        return BitString._from_packed(self._value & other._value, self._length)

    def __invert__(self) -> "BitString":
        mask = (1 << self._length) - 1
        return BitString._from_packed(self._value ^ mask, self._length)

    def flip(self, index: int) -> "BitString":
        """Return a copy with the bit at ``index`` flipped."""
        pos = index
        if pos < 0:
            pos += self._length
        if not 0 <= pos < self._length:
            raise IndexError("BitString index out of range")
        return BitString._from_packed(
            self._value ^ (1 << (self._length - 1 - pos)), self._length
        )

    def set(self, index: int, value: int) -> "BitString":
        """Return a copy with the bit at ``index`` set to ``value``."""
        if value not in (0, 1):
            raise ValueError("bit values must be 0 or 1")
        pos = index
        if pos < 0:
            pos += self._length
        if not 0 <= pos < self._length:
            raise IndexError("BitString index out of range")
        bit = 1 << (self._length - 1 - pos)
        packed = (self._value | bit) if value else (self._value & ~bit)
        return BitString._from_packed(packed, self._length)

    # ------------------------------------------------------------------ #
    # Cryptographic / statistical helpers
    # ------------------------------------------------------------------ #

    def popcount(self) -> int:
        """Number of one bits (a single ``int.bit_count`` over the packed words)."""
        return self._value.bit_count()

    def parity(self) -> int:
        """Parity (XOR) of all bits."""
        return self._value.bit_count() & 1

    def subset(self, indices: Sequence[int]) -> "BitString":
        """Return the bits at the given indices, in order."""
        s = self._bin()
        return BitString(1 if s[i] == "1" else 0 for i in indices)

    def subset_parity(self, indices: Iterable[int]) -> int:
        """Parity of the bits at the given indices."""
        s = self._bin()
        parity = 0
        for i in indices:
            if s[i] == "1":
                parity ^= 1
        return parity

    def masked_parity(self, mask: "BitString") -> int:
        """Parity of ``self AND mask`` — parity over the positions selected by a mask."""
        if mask._length != self._length:
            raise ValueError("mask length must match")
        return (self._value & mask._value).bit_count() & 1

    def hamming_distance(self, other: "BitString") -> int:
        """Number of differing positions between two equal-length bit strings."""
        if other._length != self._length:
            raise ValueError("hamming distance requires equal lengths")
        return (self._value ^ other._value).bit_count()

    def error_rate(self, other: "BitString") -> float:
        """Fraction of positions that differ (the empirical QBER between keys)."""
        if self._length == 0:
            return 0.0
        return self.hamming_distance(other) / self._length

    def chunks(self, size: int) -> List["BitString"]:
        """Split into consecutive chunks of at most ``size`` bits.

        Linear in the total length: the packed value is rendered to a binary
        string once and each chunk is re-packed from its substring, so huge
        inputs (message transcripts) do not pay quadratic shift costs.
        """
        if size <= 0:
            raise ValueError("chunk size must be positive")
        s = self._bin()
        return [
            BitString._from_packed(int(s[i : i + size], 2), min(size, self._length - i))
            for i in range(0, self._length, size)
        ]

    def concat(self, *others: "BitString") -> "BitString":
        """Concatenate this bit string with others."""
        value = self._value
        length = self._length
        for other in others:
            value = (value << other._length) | other._value
            length += other._length
        return BitString._from_packed(value, length)

    def balance(self) -> float:
        """Fraction of one bits; 0.5 for an ideally random string."""
        if not self._length:
            return 0.0
        return self._value.bit_count() / self._length

    def runs(self) -> List[int]:
        """Lengths of runs of identical bits (used by run-length sift encoding)."""
        return [len(list(group)) for _, group in groupby(self._bin())]
