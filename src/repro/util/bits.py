"""A compact, immutable bit-string type used throughout the QKD stack.

Every stage of the QKD protocol pipeline (sifting, Cascade error correction,
privacy amplification, authentication) manipulates sequences of bits: raw key
symbols, sifted keys, parity subsets, hash outputs.  ``BitString`` gives those
stages a single well-tested representation with the operations they need:

* bitwise XOR (used for parity computation and one-time-pad encryption),
* parity of arbitrary subsets,
* slicing and concatenation,
* conversion to and from ``bytes`` and ``int``,
* Hamming distance and error counting between Alice's and Bob's keys.

The class stores bits as a Python ``tuple`` of ints (0/1).  That is not the
most memory-compact choice, but it is simple, hashable and fast enough for the
key sizes the paper deals with (thousands to hundreds of thousands of bits),
and it keeps every operation easy to reason about and test.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Union


class BitString:
    """An immutable sequence of bits with cryptographic convenience methods."""

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[int] = ()):
        values = tuple(int(b) for b in bits)
        for value in values:
            if value not in (0, 1):
                raise ValueError(f"bit values must be 0 or 1, got {value}")
        self._bits = values

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def zeros(cls, n: int) -> "BitString":
        """Return a bit string of ``n`` zero bits."""
        if n < 0:
            raise ValueError("length must be non-negative")
        return cls([0] * n)

    @classmethod
    def ones(cls, n: int) -> "BitString":
        """Return a bit string of ``n`` one bits."""
        if n < 0:
            raise ValueError("length must be non-negative")
        return cls([1] * n)

    @classmethod
    def from_int(cls, value: int, length: int) -> "BitString":
        """Build a bit string from an integer, most-significant bit first."""
        if value < 0:
            raise ValueError("value must be non-negative")
        if length < 0:
            raise ValueError("length must be non-negative")
        if length and value >> length:
            raise ValueError(f"value {value} does not fit in {length} bits")
        if length == 0 and value:
            raise ValueError("cannot encode a non-zero value in zero bits")
        if length == 0:
            return cls()
        # Go through the integer's byte representation so the conversion is
        # linear in the length (per-bit shifting of a large int is quadratic,
        # which matters for the megabit key pools the VPN experiments use).
        n_bytes = (length + 7) // 8
        padding = n_bytes * 8 - length
        data = (value << padding).to_bytes(n_bytes, "big")
        bits: List[int] = []
        for byte in data:
            for shift in range(7, -1, -1):
                bits.append((byte >> shift) & 1)
        return cls(bits[:length])

    @classmethod
    def from_bytes(cls, data: bytes) -> "BitString":
        """Build a bit string from bytes, most-significant bit of each byte first."""
        bits: List[int] = []
        for byte in data:
            for shift in range(7, -1, -1):
                bits.append((byte >> shift) & 1)
        return cls(bits)

    @classmethod
    def from_str(cls, text: str) -> "BitString":
        """Build a bit string from a string of ``'0'``/``'1'`` characters."""
        cleaned = text.replace(" ", "").replace("_", "")
        if any(ch not in "01" for ch in cleaned):
            raise ValueError(f"not a binary string: {text!r}")
        return cls(int(ch) for ch in cleaned)

    @classmethod
    def random(cls, n: int, rng) -> "BitString":
        """Draw ``n`` uniformly random bits from ``rng`` (anything with ``getrandbits``)."""
        if n < 0:
            raise ValueError("length must be non-negative")
        if n == 0:
            return cls()
        value = rng.getrandbits(n)
        return cls.from_int(value, n)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    def to_int(self) -> int:
        """Interpret the bit string as an integer, most-significant bit first."""
        value = 0
        for bit in self._bits:
            value = (value << 1) | bit
        return value

    def to_bytes(self) -> bytes:
        """Pack into bytes (zero-padded on the right to a byte boundary)."""
        if not self._bits:
            return b""
        padded = list(self._bits)
        while len(padded) % 8:
            padded.append(0)
        out = bytearray()
        for i in range(0, len(padded), 8):
            byte = 0
            for bit in padded[i : i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)

    def to_list(self) -> List[int]:
        """Return the bits as a plain mutable list."""
        return list(self._bits)

    def copy(self) -> "BitString":
        """Return an independent ``BitString`` instance with the same bits.

        ``BitString`` is immutable, so aliasing is never unsafe — but key
        material handed to two protocol endpoints must not share an object,
        so that each endpoint's state is verifiably self-contained.  Only
        the wrapper object is new; the immutable bit tuple is shared, so
        this is O(1) and skips re-validation.
        """
        dup = object.__new__(BitString)
        dup._bits = self._bits
        return dup

    def __str__(self) -> str:
        return "".join(str(b) for b in self._bits)

    def __repr__(self) -> str:
        if len(self._bits) <= 64:
            return f"BitString('{self}')"
        head = "".join(str(b) for b in self._bits[:32])
        return f"BitString('{head}...', len={len(self._bits)})"

    # ------------------------------------------------------------------ #
    # Sequence protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterator[int]:
        return iter(self._bits)

    def __getitem__(self, index: Union[int, slice]) -> Union[int, "BitString"]:
        if isinstance(index, slice):
            return BitString(self._bits[index])
        return self._bits[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitString):
            return self._bits == other._bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits)

    def __add__(self, other: "BitString") -> "BitString":
        if not isinstance(other, BitString):
            return NotImplemented
        return BitString(self._bits + other._bits)

    def __bool__(self) -> bool:
        return bool(self._bits)

    # ------------------------------------------------------------------ #
    # Bitwise operations
    # ------------------------------------------------------------------ #

    def __xor__(self, other: "BitString") -> "BitString":
        if not isinstance(other, BitString):
            return NotImplemented
        if len(other) != len(self):
            raise ValueError(
                f"XOR requires equal lengths ({len(self)} vs {len(other)})"
            )
        return BitString(a ^ b for a, b in zip(self._bits, other._bits))

    def __and__(self, other: "BitString") -> "BitString":
        if not isinstance(other, BitString):
            return NotImplemented
        if len(other) != len(self):
            raise ValueError(
                f"AND requires equal lengths ({len(self)} vs {len(other)})"
            )
        return BitString(a & b for a, b in zip(self._bits, other._bits))

    def __invert__(self) -> "BitString":
        return BitString(1 - b for b in self._bits)

    def flip(self, index: int) -> "BitString":
        """Return a copy with the bit at ``index`` flipped."""
        bits = list(self._bits)
        bits[index] ^= 1
        return BitString(bits)

    def set(self, index: int, value: int) -> "BitString":
        """Return a copy with the bit at ``index`` set to ``value``."""
        if value not in (0, 1):
            raise ValueError("bit values must be 0 or 1")
        bits = list(self._bits)
        bits[index] = value
        return BitString(bits)

    # ------------------------------------------------------------------ #
    # Cryptographic / statistical helpers
    # ------------------------------------------------------------------ #

    def popcount(self) -> int:
        """Number of one bits."""
        return sum(self._bits)

    def parity(self) -> int:
        """Parity (XOR) of all bits."""
        return self.popcount() & 1

    def subset(self, indices: Sequence[int]) -> "BitString":
        """Return the bits at the given indices, in order."""
        return BitString(self._bits[i] for i in indices)

    def subset_parity(self, indices: Iterable[int]) -> int:
        """Parity of the bits at the given indices."""
        parity = 0
        for i in indices:
            parity ^= self._bits[i]
        return parity

    def masked_parity(self, mask: "BitString") -> int:
        """Parity of ``self AND mask`` — parity over the positions selected by a mask."""
        if len(mask) != len(self):
            raise ValueError("mask length must match")
        parity = 0
        for a, b in zip(self._bits, mask._bits):
            parity ^= a & b
        return parity

    def hamming_distance(self, other: "BitString") -> int:
        """Number of differing positions between two equal-length bit strings."""
        if len(other) != len(self):
            raise ValueError("hamming distance requires equal lengths")
        return sum(a != b for a, b in zip(self._bits, other._bits))

    def error_rate(self, other: "BitString") -> float:
        """Fraction of positions that differ (the empirical QBER between keys)."""
        if len(self) == 0:
            return 0.0
        return self.hamming_distance(other) / len(self)

    def chunks(self, size: int) -> List["BitString"]:
        """Split into consecutive chunks of at most ``size`` bits."""
        if size <= 0:
            raise ValueError("chunk size must be positive")
        return [self[i : i + size] for i in range(0, len(self), size)]

    def concat(self, *others: "BitString") -> "BitString":
        """Concatenate this bit string with others."""
        bits = list(self._bits)
        for other in others:
            bits.extend(other._bits)
        return BitString(bits)

    def balance(self) -> float:
        """Fraction of one bits; 0.5 for an ideally random string."""
        if not self._bits:
            return 0.0
        return self.popcount() / len(self._bits)

    def runs(self) -> List[int]:
        """Lengths of runs of identical bits (used by run-length sift encoding)."""
        if not self._bits:
            return []
        lengths = [1]
        for previous, current in zip(self._bits, self._bits[1:]):
            if current == previous:
                lengths[-1] += 1
            else:
                lengths.append(1)
        return lengths
