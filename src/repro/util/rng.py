"""Deterministic randomness for reproducible QKD simulations.

Physics simulations of quantum channels are inherently stochastic (photon
number statistics, detector dark counts, basis choices).  To make experiments
and tests reproducible every component draws randomness from a
``DeterministicRNG`` that is explicitly seeded, and components that need
independent streams derive child generators with :meth:`DeterministicRNG.fork`
rather than sharing one stream (which would make results depend on call order).
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A seeded random source with the draws the QKD stack needs.

    This wraps :class:`random.Random` (a Mersenne Twister) rather than
    ``numpy`` so that single-draw call sites stay cheap and the dependency
    surface stays small.  It is *not* a cryptographic RNG; within the
    simulation it stands in for both the physical randomness of the quantum
    channel and the local random choices (basis selection, LFSR seeds) that a
    real implementation would take from a hardware RNG.
    """

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self._random_state = None
        self._fork_counter = 0

    @property
    def _random(self) -> random.Random:
        """The backing Mersenne Twister, seeded on first draw.

        Lazy because forking is much more common than drawing: a link
        constructs ~10 labeled forks but most only ever derive further
        children (``fork`` needs just the seed), and per-epoch fleets
        construct links by the hundred.  Seeding is a pure function of
        ``seed``, so laziness cannot perturb any stream.
        """
        state = self._random_state
        if state is None:
            state = self._random_state = random.Random(self.seed)
        return state

    # ------------------------------------------------------------------ #
    # Stream management
    # ------------------------------------------------------------------ #

    def fork(self, label: str = "") -> "DeterministicRNG":
        """Derive an independent child generator.

        The child's seed mixes this generator's seed, a per-parent counter and
        the optional label through a stable hash (BLAKE2b), so forking in a
        fixed order yields the same set of independent streams in every
        process.  (Python's built-in ``hash`` of a string is randomized per
        process by ``PYTHONHASHSEED``, which would silently make every
        "seeded" simulation unreproducible across runs.)
        """
        self._fork_counter += 1
        base = self.seed if self.seed is not None else 0
        material = f"{base}|{self._fork_counter}|{label}".encode()
        child_seed = int.from_bytes(
            hashlib.blake2b(material, digest_size=8).digest(), "big"
        )
        return DeterministicRNG(child_seed)

    def fork_labeled(self, label: str) -> "DeterministicRNG":
        """Derive a child generator from this seed and ``label`` *only*.

        Unlike :meth:`fork`, no per-parent counter enters the derivation, so
        the child stream depends solely on ``(seed, label)`` — forking the
        same label twice yields the same stream, and the order in which
        different labels are forked does not matter.  This is the derivation
        the parallel runtime uses for its per-block streams
        (``fork_labeled(f"block/{block_id}")``): a block's randomness is a
        pure function of the runtime seed and the block id, which is what
        makes parallel distillation output independent of worker count and
        scheduling order.

        The key material is framed as ``"<seed>|L|<label>"``; the counter
        variant uses a decimal counter in that position, so the two
        derivations can never collide.
        """
        base = self.seed if self.seed is not None else 0
        material = f"{base}|L|{label}".encode()
        child_seed = int.from_bytes(
            hashlib.blake2b(material, digest_size=8).digest(), "big"
        )
        return DeterministicRNG(child_seed)

    # ------------------------------------------------------------------ #
    # Primitive draws
    # ------------------------------------------------------------------ #

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def getrandbits(self, n: int) -> int:
        """``n`` random bits as an integer (``n`` may be 0)."""
        if n == 0:
            return 0
        return self._random.getrandbits(n)

    #: Word width used by :meth:`random_bits`.
    WORD_BITS = 64

    def random_bits(self, n: int):
        """``n`` random bits as a packed :class:`~repro.util.bits.BitString`,
        drawn one 64-bit word at a time.

        .. warning::
           This produces a **different stream** than the per-bit or
           single-call draws (``bit()`` loops, ``getrandbits(n)``,
           ``BitString.random``) for the same underlying generator state:
           the Mersenne Twister consumes its output in 32-bit granules, so
           drawing ``ceil(n / 64)`` words advances the state differently
           than one ``n``-bit draw.  It exists for *new* word-oriented code
           paths; existing seeded streams (and the pinned key-material
           digests that depend on them) must keep using the draw pattern
           they were recorded with.

        The word decomposition is fixed (full 64-bit words first, one final
        ``n % 64``-bit draw), so a given seed always yields the same bits.
        """
        from repro.util.bits import BitString

        if n < 0:
            raise ValueError("length must be non-negative")
        value = 0
        whole_words, tail = divmod(n, self.WORD_BITS)
        for _ in range(whole_words):
            value = (value << self.WORD_BITS) | self._random.getrandbits(self.WORD_BITS)
        if tail:
            value = (value << tail) | self._random.getrandbits(tail)
        return BitString.from_int(value, n)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def bit(self) -> int:
        """A single uniformly random bit."""
        return self._random.getrandbits(1)

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def choice(self, options: Sequence[T]) -> T:
        """Pick one element uniformly at random."""
        return self._random.choice(options)

    def shuffle(self, items: List[T]) -> List[T]:
        """Return a shuffled copy of ``items`` (the input is not modified)."""
        shuffled = list(items)
        self._random.shuffle(shuffled)
        return shuffled

    def sample(self, population: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements without replacement."""
        return self._random.sample(population, k)

    # ------------------------------------------------------------------ #
    # Distributions used by the photonic simulation
    # ------------------------------------------------------------------ #

    def poisson(self, mean: float) -> int:
        """Poisson-distributed photon number for a weak-coherent pulse.

        Uses Knuth's multiplication method, which is exact and fast for the
        small means (mu ~ 0.1) used in QKD sources.
        """
        if mean < 0:
            raise ValueError("Poisson mean must be non-negative")
        if mean == 0:
            return 0
        import math

        limit = math.exp(-mean)
        count = 0
        product = self._random.random()
        while product > limit:
            count += 1
            product *= self._random.random()
        return count

    def exponential(self, mean: float) -> float:
        """Exponentially distributed waiting time (e.g. between dark counts)."""
        if mean <= 0:
            raise ValueError("exponential mean must be positive")
        return self._random.expovariate(1.0 / mean)

    def gauss(self, mean: float, stddev: float) -> float:
        """Gaussian draw (used for timing jitter and phase drift)."""
        return self._random.gauss(mean, stddev)

    def binomial(self, n: int, probability: float) -> int:
        """Number of successes in ``n`` Bernoulli trials."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return sum(1 for _ in range(n) if self.bernoulli(probability))
