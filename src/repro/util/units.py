"""Unit helpers for the photonic layer: decibels, fiber loss, rates.

The paper's physical layer is specified in the units optical engineers use —
dB of loss, dB/km of fiber attenuation, pulse repetition rates in MHz, mean
photon numbers per pulse.  These helpers convert between those and the plain
probabilities/fractions the simulation works with, so the conversion logic
lives (and is tested) in exactly one place.
"""

from __future__ import annotations

import math

# Standard telecom fiber attenuation at 1550 nm, in dB per km.  The paper's
# link runs over "10 km Telco Fiber Spool" of ordinary telecom fiber.
DEFAULT_FIBER_ATTENUATION_DB_PER_KM = 0.2

# Typical insertion loss of a MEMS optical switch (paper section 8 notes each
# untrusted switch "adds at least a fractional dB insertion loss").
DEFAULT_SWITCH_INSERTION_LOSS_DB = 0.5


def db_to_fraction(loss_db: float) -> float:
    """Convert a loss in dB to the transmitted power fraction.

    A loss of 3 dB corresponds to a transmitted fraction of ~0.501; 10 dB to
    0.1; 0 dB to 1.0.  Negative dB values represent gain and return > 1.
    """
    return 10.0 ** (-loss_db / 10.0)


def fraction_to_db(fraction: float) -> float:
    """Convert a transmitted power fraction to a loss in dB."""
    if fraction <= 0:
        raise ValueError("transmitted fraction must be positive")
    return -10.0 * math.log10(fraction)


def fiber_loss_db(
    length_km: float,
    attenuation_db_per_km: float = DEFAULT_FIBER_ATTENUATION_DB_PER_KM,
) -> float:
    """Total attenuation of a fiber span of the given length."""
    if length_km < 0:
        raise ValueError("fiber length must be non-negative")
    if attenuation_db_per_km < 0:
        raise ValueError("attenuation must be non-negative")
    return length_km * attenuation_db_per_km

def fiber_transmittance(
    length_km: float,
    attenuation_db_per_km: float = DEFAULT_FIBER_ATTENUATION_DB_PER_KM,
) -> float:
    """Probability that a photon survives a fiber span of the given length."""
    return db_to_fraction(fiber_loss_db(length_km, attenuation_db_per_km))


def pulses_per_second(repetition_rate_mhz: float) -> float:
    """Convert a pulse repetition rate in MHz to pulses per second."""
    if repetition_rate_mhz < 0:
        raise ValueError("repetition rate must be non-negative")
    return repetition_rate_mhz * 1.0e6


def multi_photon_probability(mean_photon_number: float) -> float:
    """Probability that a weak-coherent pulse contains two or more photons.

    For a Poissonian source with mean mu this is ``1 - e^-mu - mu e^-mu``.
    This quantity drives the beam-splitting / PNS leakage estimates in the
    paper's entropy analysis (section 6).
    """
    if mean_photon_number < 0:
        raise ValueError("mean photon number must be non-negative")
    mu = mean_photon_number
    return 1.0 - math.exp(-mu) - mu * math.exp(-mu)


def non_empty_pulse_probability(mean_photon_number: float) -> float:
    """Probability that a weak-coherent pulse contains at least one photon."""
    if mean_photon_number < 0:
        raise ValueError("mean photon number must be non-negative")
    return 1.0 - math.exp(-mean_photon_number)
