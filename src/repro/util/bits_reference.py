"""Pure-tuple reference implementation of :class:`repro.util.bits.BitString`.

This is the original per-bit ``BitString`` (bits stored as a Python tuple of
0/1 ints), retained verbatim as the behavioural oracle for the packed
machine-word implementation that replaced it.  The differential test suite
(``tests/test_bits_differential.py``) drives both classes through every public
operation on randomized inputs and requires identical results — including the
exact exception types for invalid input.

It is intentionally slow and intentionally unused by the production code
paths; do not "optimise" it, or it stops being an oracle.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Union


class ReferenceBitString:
    """The tuple-backed bit string the packed implementation must match."""

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[int] = ()):
        values = tuple(int(b) for b in bits)
        for value in values:
            if value not in (0, 1):
                raise ValueError(f"bit values must be 0 or 1, got {value}")
        self._bits = values

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def zeros(cls, n: int) -> "ReferenceBitString":
        if n < 0:
            raise ValueError("length must be non-negative")
        return cls([0] * n)

    @classmethod
    def ones(cls, n: int) -> "ReferenceBitString":
        if n < 0:
            raise ValueError("length must be non-negative")
        return cls([1] * n)

    @classmethod
    def from_int(cls, value: int, length: int) -> "ReferenceBitString":
        if value < 0:
            raise ValueError("value must be non-negative")
        if length < 0:
            raise ValueError("length must be non-negative")
        if length and value >> length:
            raise ValueError(f"value {value} does not fit in {length} bits")
        if length == 0 and value:
            raise ValueError("cannot encode a non-zero value in zero bits")
        if length == 0:
            return cls()
        n_bytes = (length + 7) // 8
        padding = n_bytes * 8 - length
        data = (value << padding).to_bytes(n_bytes, "big")
        bits: List[int] = []
        for byte in data:
            for shift in range(7, -1, -1):
                bits.append((byte >> shift) & 1)
        return cls(bits[:length])

    @classmethod
    def from_int_lsb(cls, value: int, length: int) -> "ReferenceBitString":
        if value < 0:
            raise ValueError("value must be non-negative")
        if length < 0:
            raise ValueError("length must be non-negative")
        if value >> length:
            raise ValueError(f"value {value} does not fit in {length} bits")
        return cls((value >> i) & 1 for i in range(length))

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReferenceBitString":
        bits: List[int] = []
        for byte in data:
            for shift in range(7, -1, -1):
                bits.append((byte >> shift) & 1)
        return cls(bits)

    @classmethod
    def from_str(cls, text: str) -> "ReferenceBitString":
        cleaned = text.replace(" ", "").replace("_", "")
        if any(ch not in "01" for ch in cleaned):
            raise ValueError(f"not a binary string: {text!r}")
        return cls(int(ch) for ch in cleaned)

    @classmethod
    def random(cls, n: int, rng) -> "ReferenceBitString":
        if n < 0:
            raise ValueError("length must be non-negative")
        if n == 0:
            return cls()
        value = rng.getrandbits(n)
        return cls.from_int(value, n)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    def to_int(self) -> int:
        value = 0
        for bit in self._bits:
            value = (value << 1) | bit
        return value

    def to_int_lsb(self) -> int:
        value = 0
        for i, bit in enumerate(self._bits):
            if bit:
                value |= 1 << i
        return value

    def to_bytes(self) -> bytes:
        if not self._bits:
            return b""
        padded = list(self._bits)
        while len(padded) % 8:
            padded.append(0)
        out = bytearray()
        for i in range(0, len(padded), 8):
            byte = 0
            for bit in padded[i : i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)

    def to_list(self) -> List[int]:
        return list(self._bits)

    def one_indices(self) -> List[int]:
        return [i for i, bit in enumerate(self._bits) if bit]

    def copy(self) -> "ReferenceBitString":
        dup = object.__new__(ReferenceBitString)
        dup._bits = self._bits
        return dup

    def __str__(self) -> str:
        return "".join(str(b) for b in self._bits)

    def __repr__(self) -> str:
        if len(self._bits) <= 64:
            return f"BitString('{self}')"
        head = "".join(str(b) for b in self._bits[:32])
        return f"BitString('{head}...', len={len(self._bits)})"

    # ------------------------------------------------------------------ #
    # Sequence protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterator[int]:
        return iter(self._bits)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[int, "ReferenceBitString"]:
        if isinstance(index, slice):
            return ReferenceBitString(self._bits[index])
        return self._bits[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ReferenceBitString):
            return self._bits == other._bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits)

    def __add__(self, other: "ReferenceBitString") -> "ReferenceBitString":
        if not isinstance(other, ReferenceBitString):
            return NotImplemented
        return ReferenceBitString(self._bits + other._bits)

    def __bool__(self) -> bool:
        return bool(self._bits)

    # ------------------------------------------------------------------ #
    # Bitwise operations
    # ------------------------------------------------------------------ #

    def __xor__(self, other: "ReferenceBitString") -> "ReferenceBitString":
        if not isinstance(other, ReferenceBitString):
            return NotImplemented
        if len(other) != len(self):
            raise ValueError(
                f"XOR requires equal lengths ({len(self)} vs {len(other)})"
            )
        return ReferenceBitString(a ^ b for a, b in zip(self._bits, other._bits))

    def __and__(self, other: "ReferenceBitString") -> "ReferenceBitString":
        if not isinstance(other, ReferenceBitString):
            return NotImplemented
        if len(other) != len(self):
            raise ValueError(
                f"AND requires equal lengths ({len(self)} vs {len(other)})"
            )
        return ReferenceBitString(a & b for a, b in zip(self._bits, other._bits))

    def __invert__(self) -> "ReferenceBitString":
        return ReferenceBitString(1 - b for b in self._bits)

    def flip(self, index: int) -> "ReferenceBitString":
        bits = list(self._bits)
        bits[index] ^= 1
        return ReferenceBitString(bits)

    def set(self, index: int, value: int) -> "ReferenceBitString":
        if value not in (0, 1):
            raise ValueError("bit values must be 0 or 1")
        bits = list(self._bits)
        bits[index] = value
        return ReferenceBitString(bits)

    # ------------------------------------------------------------------ #
    # Cryptographic / statistical helpers
    # ------------------------------------------------------------------ #

    def popcount(self) -> int:
        return sum(self._bits)

    def parity(self) -> int:
        return self.popcount() & 1

    def subset(self, indices: Sequence[int]) -> "ReferenceBitString":
        return ReferenceBitString(self._bits[i] for i in indices)

    def subset_parity(self, indices: Iterable[int]) -> int:
        parity = 0
        for i in indices:
            parity ^= self._bits[i]
        return parity

    def masked_parity(self, mask: "ReferenceBitString") -> int:
        if len(mask) != len(self):
            raise ValueError("mask length must match")
        parity = 0
        for a, b in zip(self._bits, mask._bits):
            parity ^= a & b
        return parity

    def hamming_distance(self, other: "ReferenceBitString") -> int:
        if len(other) != len(self):
            raise ValueError("hamming distance requires equal lengths")
        return sum(a != b for a, b in zip(self._bits, other._bits))

    def error_rate(self, other: "ReferenceBitString") -> float:
        if len(self) == 0:
            return 0.0
        return self.hamming_distance(other) / len(self)

    def chunks(self, size: int) -> List["ReferenceBitString"]:
        if size <= 0:
            raise ValueError("chunk size must be positive")
        return [self[i : i + size] for i in range(0, len(self), size)]

    def concat(self, *others: "ReferenceBitString") -> "ReferenceBitString":
        bits = list(self._bits)
        for other in others:
            bits.extend(other._bits)
        return ReferenceBitString(bits)

    def balance(self) -> float:
        if not self._bits:
            return 0.0
        return self.popcount() / len(self._bits)

    def runs(self) -> List[int]:
        if not self._bits:
            return []
        lengths = [1]
        for previous, current in zip(self._bits, self._bits[1:]):
            if current == previous:
                lengths[-1] += 1
            else:
                lengths.append(1)
        return lengths
