"""Utility substrate: bit strings, deterministic randomness, unit helpers.

These are the low-level building blocks shared by every other subpackage.
Nothing in here knows about quantum optics or cryptographic protocols; it is
pure data plumbing, kept deliberately small and well tested.
"""

from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG
from repro.util.units import (
    db_to_fraction,
    fraction_to_db,
    fiber_loss_db,
    fiber_transmittance,
)

__all__ = [
    "BitString",
    "DeterministicRNG",
    "db_to_fraction",
    "fraction_to_db",
    "fiber_loss_db",
    "fiber_transmittance",
]
