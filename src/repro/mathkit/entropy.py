"""Entropy and statistics helpers used by the QKD entropy-estimation stage.

The defense functions of the paper (section 6 and the Appendix) are built out
of a handful of information-theoretic quantities: the binary entropy function,
its inverse (used when converting an error rate into a key-fraction bound),
Rényi collision entropy (the quantity privacy amplification actually
distills), and standard deviations of binomially distributed counts (the
paper's "margin for certainty based on the standard deviation").
"""

from __future__ import annotations

import math
from typing import Sequence


def binary_entropy(p: float) -> float:
    """Shannon binary entropy ``h(p)`` in bits; 0 at p in {0, 1}, 1 at p = 0.5."""
    if p < 0.0 or p > 1.0:
        raise ValueError("probability must lie in [0, 1]")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def binary_entropy_inverse(h: float, tolerance: float = 1e-12) -> float:
    """Inverse of :func:`binary_entropy` restricted to p in [0, 1/2] (bisection)."""
    if h < 0.0 or h > 1.0:
        raise ValueError("entropy must lie in [0, 1]")
    low, high = 0.0, 0.5
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if binary_entropy(mid) < h:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def renyi_collision_entropy_rate(error_rate: float) -> float:
    """Per-bit Rényi (order-2) entropy of a bit subjected to the given error rate.

    For the BB84 intercept/resend family of attacks the collision entropy per
    sifted bit seen by Eve is ``-log2(1/2 + 2e - 2e^2)`` smaller than one; the
    full expression used by Slutsky-style defense frontiers is built on this
    quantity.  The helper returns the *remaining* collision entropy per bit.
    """
    if error_rate < 0.0 or error_rate > 1.0:
        raise ValueError("error rate must lie in [0, 1]")
    collision_probability = 0.5 + 2.0 * error_rate - 2.0 * error_rate * error_rate
    # Clamp for numerical safety; probabilities marginally above 1 can appear
    # from floating point error at e = 0.5.
    collision_probability = min(max(collision_probability, 0.5), 1.0)
    return -math.log2(collision_probability)


def binomial_stddev(n: int, p: float) -> float:
    """Standard deviation of a Binomial(n, p) count."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if p < 0.0 or p > 1.0:
        raise ValueError("probability must lie in [0, 1]")
    return math.sqrt(n * p * (1.0 - p))


def observed_rate_stddev(successes: int, trials: int) -> float:
    """Standard deviation of an observed rate ``successes / trials``."""
    if trials <= 0:
        return 0.0
    rate = successes / trials
    return math.sqrt(max(rate * (1.0 - rate), 0.0) / trials)


def combine_stddevs(stddevs: Sequence[float]) -> float:
    """Combine independent standard deviations in quadrature.

    The paper separates the standard deviation of each term of the entropy
    estimate and combines them at the end, multiplied by the confidence
    parameter c; this helper performs that combination.
    """
    return math.sqrt(sum(s * s for s in stddevs))


def eavesdropping_failure_probability(confidence_sigmas: float) -> float:
    """Approximate probability mass beyond ``c`` standard deviations (one-sided).

    The paper remarks that c = 5 corresponds to "about 10^-6 chance of
    successful eavesdropping"; this Gaussian tail approximation reproduces
    that figure (Q(5) ~ 2.9e-7, within the paper's order of magnitude).
    """
    if confidence_sigmas < 0:
        raise ValueError("confidence must be non-negative")
    return 0.5 * math.erfc(confidence_sigmas / math.sqrt(2.0))
