"""Arithmetic in the binary extension fields GF(2^n).

Privacy amplification in the paper (section 5) hashes the error-corrected key
with "a linear hash function over the Galois Field GF[2^n] where n is the
number of bits as input, rounded up to a multiple of 32".  The initiating side
transmits the sparse primitive polynomial of the field, an n-bit multiplier
and an m-bit polynomial to add; both sides compute ``(key * multiplier + addend)``
in GF(2^n) and truncate to m bits.

This module provides exactly that machinery:

* a table of sparse primitive (irreducible, primitive) polynomials for every
  multiple-of-32 degree up to 4096 bits, expressed by their non-zero term
  exponents, as a real implementation would carry;
* :class:`GF2nField`, which performs carry-less multiplication and reduction
  modulo the field polynomial on arbitrary-precision Python integers.

Elements are represented as Python ints whose bit ``i`` is the coefficient of
``x^i``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.util.bits import BitString

# --------------------------------------------------------------------------- #
# Sparse primitive polynomials.
#
# Each entry maps a degree n to the exponents of the non-leading, non-constant
# terms of a primitive trinomial/pentanomial x^n + ... + 1 over GF(2).  These
# are the standard sparse primitive polynomials tabulated in the coding-theory
# literature (Zierler/Brillhart tables; the low-degree ones are also the
# polynomials used by common CRCs and LFSRs).  The paper's engine rounds the
# key length up to a multiple of 32, so the table covers every multiple of 32
# in the block-size range the protocol uses.
# --------------------------------------------------------------------------- #
#
# Every entry below has been verified irreducible with :func:`is_irreducible`
# (Rabin's exact test); the table-building script lives in
# ``benchmarks/`` history and the test suite re-verifies the small degrees.
# The name follows the paper's wording ("the (sparse) primitive polynomial of
# the Galois field"); irreducibility is the property the hash construction
# needs.  Degrees are multiples of 32 because the engine rounds key lengths up
# to a multiple of 32 before hashing; longer keys are hashed in blocks of at
# most ``MAX_FIELD_DEGREE`` bits.
# --------------------------------------------------------------------------- #
PRIMITIVE_POLYNOMIALS: Dict[int, Tuple[int, ...]] = {
    8: (7, 2, 1),
    16: (6, 2, 1),
    32: (22, 2, 1),
    64: (11, 2, 1),
    96: (19, 2, 1),
    128: (7, 2, 1),
    160: (7, 3, 1),
    192: (7, 2, 1),
    224: (21, 7, 1),
    256: (16, 3, 1),
    288: (11, 10, 1),
    320: (7, 2, 1),
    352: (21, 5, 2),
    384: (27, 6, 1),
    416: (27, 5, 1),
    448: (13, 7, 1),
    480: (25, 4, 3),
    512: (26, 3, 2),
    544: (8, 3, 1),
    576: (22, 19, 1),
    608: (31, 3, 1),
    640: (28, 27, 1),
    672: (31, 22, 1),
    704: (31, 29, 1),
    736: (25, 7, 1),
}

#: The largest field degree carried in the table; privacy amplification splits
#: longer keys into blocks of at most this many bits before hashing.
MAX_FIELD_DEGREE = max(PRIMITIVE_POLYNOMIALS)


def round_up_to_field_degree(n_bits: int, multiple: int = 32) -> int:
    """Round a key length up to the next multiple of ``multiple`` (at least one)."""
    if n_bits <= 0:
        return multiple
    remainder = n_bits % multiple
    if remainder == 0:
        return n_bits
    return n_bits + (multiple - remainder)


def polynomial_from_exponents(degree: int, exponents: Iterable[int]) -> int:
    """Build the integer representation of ``x^degree + sum x^e + 1``."""
    value = (1 << degree) | 1
    for exponent in exponents:
        if exponent <= 0 or exponent >= degree:
            raise ValueError("middle-term exponents must be strictly between 0 and degree")
        value |= 1 << exponent
    return value


def carryless_multiply(a: int, b: int) -> int:
    """Carry-less (polynomial) product of two GF(2) polynomials as integers.

    Evaluated with a 16-entry window table over 4-bit nibbles of ``b``, so the
    cost is ``O(bits(b)/4)`` big-int operations rather than one shift-XOR per
    set bit — the shape that matters for the privacy-amplification fields,
    whose operands run to hundreds of bits.
    """
    if a < 0 or b < 0:
        raise ValueError("polynomial operands must be non-negative")
    if a == 0 or b == 0:
        return 0
    table = [0] * 16
    for w in range(1, 16):
        table[w] = (table[w >> 1] << 1) ^ (a if w & 1 else 0)
    result = 0
    shift = (b.bit_length() + 3) // 4 * 4
    while shift:
        shift -= 4
        result = (result << 4) ^ table[(b >> shift) & 0xF]
    return result


def polynomial_mod(value: int, modulus: int) -> int:
    """Reduce a GF(2) polynomial modulo another."""
    if modulus <= 0:
        raise ValueError("modulus must be a non-zero polynomial")
    mod_degree = modulus.bit_length() - 1
    while value.bit_length() - 1 >= mod_degree and value:
        shift = (value.bit_length() - 1) - mod_degree
        value ^= modulus << shift
    return value


def polynomial_degree(value: int) -> int:
    """Degree of a GF(2) polynomial (degree of the zero polynomial is -1)."""
    return value.bit_length() - 1


def polynomial_gcd(a: int, b: int) -> int:
    """GCD of two GF(2) polynomials (Euclid's algorithm with polynomial mod)."""
    while b:
        a, b = b, polynomial_mod(a, b)
    return a


def is_irreducible(poly: int) -> bool:
    """Rabin irreducibility test for a GF(2) polynomial given as an integer.

    A degree-n polynomial f is irreducible over GF(2) iff x^(2^n) = x (mod f)
    and gcd(x^(2^(n/q)) - x, f) = 1 for every prime divisor q of n.  This is
    exact (not probabilistic) and is what the table-building script and the
    test suite use to validate the primitive-polynomial table.
    """
    degree = polynomial_degree(poly)
    if degree <= 0:
        return False

    def square_mod(value: int) -> int:
        return polynomial_mod(carryless_multiply(value, value), poly)

    def x_pow_2k_mod(k: int) -> int:
        value = 2  # the polynomial "x"
        for _ in range(k):
            value = square_mod(value)
        return value

    # Condition 1: x^(2^n) == x (mod f)
    if x_pow_2k_mod(degree) != polynomial_mod(2, poly):
        return False

    # Condition 2: gcd(x^(2^(n/q)) + x, f) == 1 for each prime q | n
    def prime_factors(n: int):
        factors = set()
        d = 2
        while d * d <= n:
            while n % d == 0:
                factors.add(d)
                n //= d
            d += 1
        if n > 1:
            factors.add(n)
        return factors

    for q in prime_factors(degree):
        h = x_pow_2k_mod(degree // q) ^ 2
        if polynomial_gcd(poly, h) != 1:
            return False
    return True


class GF2nField:
    """The finite field GF(2^n) defined by a sparse primitive polynomial.

    Elements are Python integers in ``[0, 2^n)``; bit ``i`` of an element is
    the coefficient of ``x^i``.
    """

    def __init__(self, degree: int, exponents: Tuple[int, ...] = None):
        if degree <= 0:
            raise ValueError("field degree must be positive")
        if exponents is None:
            if degree not in PRIMITIVE_POLYNOMIALS:
                raise ValueError(
                    f"no tabulated primitive polynomial for degree {degree}; "
                    "pass the middle-term exponents explicitly"
                )
            exponents = PRIMITIVE_POLYNOMIALS[degree]
        self.degree = degree
        self.exponents = tuple(sorted(exponents, reverse=True))
        self.modulus = polynomial_from_exponents(degree, exponents)
        self.order = (1 << degree) - 1
        self._element_mask = (1 << degree) - 1

    # ------------------------------------------------------------------ #

    @classmethod
    def for_key_length(cls, n_bits: int) -> "GF2nField":
        """The field the QKD engine uses for a key of ``n_bits`` bits.

        Per the paper, the input length is rounded up to a multiple of 32 and
        the field of that degree is used.  Lengths beyond the table are capped
        at the largest tabulated degree (the engine splits longer keys into
        blocks before hashing).
        """
        degree = round_up_to_field_degree(n_bits)
        if degree not in PRIMITIVE_POLYNOMIALS:
            degree = MAX_FIELD_DEGREE
        return cls(degree)

    # ------------------------------------------------------------------ #
    # Field operations
    # ------------------------------------------------------------------ #

    def _check(self, value: int) -> int:
        value = int(value)
        if value < 0 or value >> self.degree:
            raise ValueError(f"element does not fit in GF(2^{self.degree})")
        return value

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR)."""
        return self._check(a) ^ self._check(b)

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication modulo the primitive polynomial."""
        product = carryless_multiply(self._check(a), self._check(b))
        return self._reduce(product)

    def _reduce(self, value: int) -> int:
        """Reduce modulo the field polynomial, exploiting its sparseness.

        Because ``x^degree = sum x^e + 1 (mod f)`` with every ``e`` small, the
        whole overflow half folds back in one pass per (tiny) middle-term
        degree: a 2n-bit product reduces in two or three passes of word-wide
        XORs instead of one generic division step per overflow bit.
        """
        degree = self.degree
        mask = self._element_mask
        exponents = self.exponents
        while value >> degree:
            high = value >> degree
            value &= mask
            value ^= high
            for e in exponents:
                value ^= high << e
        return value

    def power(self, base: int, exponent: int) -> int:
        """Field exponentiation by square-and-multiply."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        result = 1
        factor = self._check(base)
        while exponent:
            if exponent & 1:
                result = self.multiply(result, factor)
            factor = self.multiply(factor, factor)
            exponent >>= 1
        return result

    def inverse(self, a: int) -> int:
        """Multiplicative inverse via Fermat's little theorem (a^(2^n - 2))."""
        a = self._check(a)
        if a == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return self.power(a, self.order - 1)

    # ------------------------------------------------------------------ #
    # Linear hashing (privacy amplification primitive)
    # ------------------------------------------------------------------ #

    def linear_hash(self, element: int, multiplier: int, addend: int, output_bits: int) -> int:
        """Compute ``truncate_m(element * multiplier + addend)``.

        This is exactly the privacy-amplification transform of the paper: a
        multiplication in GF(2^n), the XOR of an m-bit polynomial, and
        truncation of the result to the low ``output_bits`` bits.
        """
        if output_bits < 0 or output_bits > self.degree:
            raise ValueError("output length must be between 0 and the field degree")
        product = self.multiply(element, multiplier)
        mixed = product ^ self._check(addend)
        if output_bits == 0:
            return 0
        return mixed & ((1 << output_bits) - 1)

    def hash_bits(
        self, key: BitString, multiplier: int, addend: int, output_bits: int
    ) -> BitString:
        """Hash a :class:`BitString` key (zero-padded up to the field degree)."""
        if len(key) > self.degree:
            raise ValueError(
                f"key of {len(key)} bits does not fit in GF(2^{self.degree})"
            )
        element = key.to_int()
        hashed = self.linear_hash(element, multiplier, addend, output_bits)
        return BitString.from_int(hashed, output_bits)

    def element_from_bits(self, bits: BitString) -> int:
        """Interpret a bit string as a field element."""
        if len(bits) > self.degree:
            raise ValueError("bit string longer than the field degree")
        return bits.to_int()

    # ------------------------------------------------------------------ #

    def is_primitive_element(self, a: int, max_checks: int = 64) -> bool:
        """Cheap sanity check that ``a`` generates a large multiplicative subgroup.

        A full primitivity test requires factoring 2^n - 1; for test purposes
        we verify that no small power of ``a`` cycles back to 1, which catches
        degenerate choices without the cost of factoring.
        """
        a = self._check(a)
        if a in (0, 1):
            return False
        value = a
        for _ in range(min(max_checks, self.order - 1)):
            value = self.multiply(value, a)
            if value == 1:
                return False
        return True

    def __repr__(self) -> str:
        terms = " + ".join(
            [f"x^{self.degree}"] + [f"x^{e}" for e in self.exponents] + ["1"]
        )
        return f"GF2nField({terms})"
