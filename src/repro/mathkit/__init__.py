"""Mathematical substrate for the QKD protocol suite.

The protocol stages of the paper lean on a small amount of finite-field and
combinatorial machinery:

* **GF(2) linear algebra** — parity subsets in Cascade are linear functionals
  over GF(2); counting how many *independent* parities were disclosed bounds
  the information leaked to Eve.
* **GF(2^n) field arithmetic** — privacy amplification applies a linear hash
  "over the Galois Field GF[2^n]" parameterised by a sparse primitive
  polynomial, an n-bit multiplier and an m-bit additive polynomial (paper §5).
* **LFSRs** — Cascade's pseudo-random parity subsets are generated from a
  Linear-Feedback Shift Register identified by a 32-bit seed (paper §5).
* **Universal hashing (Toeplitz / polynomial)** — Wegman-Carter
  authentication and an alternative privacy-amplification construction.
* **Entropy helpers** — binary entropy and the statistics used by the Bennett
  and Slutsky defense functions.
"""

from repro.mathkit.gf2 import GF2Matrix, gf2_rank
from repro.mathkit.gf2n import GF2nField, PRIMITIVE_POLYNOMIALS
from repro.mathkit.lfsr import LFSR, lfsr_subset_mask
from repro.mathkit.toeplitz import ToeplitzHash
from repro.mathkit.entropy import (
    binary_entropy,
    binary_entropy_inverse,
    renyi_collision_entropy_rate,
)

__all__ = [
    "GF2Matrix",
    "gf2_rank",
    "GF2nField",
    "PRIMITIVE_POLYNOMIALS",
    "LFSR",
    "lfsr_subset_mask",
    "ToeplitzHash",
    "binary_entropy",
    "binary_entropy_inverse",
    "renyi_collision_entropy_rate",
]
