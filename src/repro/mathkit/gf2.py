"""Linear algebra over GF(2).

Cascade error correction discloses the parities of pseudo-random subsets of
the sifted key.  Each disclosed parity is a linear functional over GF(2); the
information actually leaked to an eavesdropper is bounded by the *rank* of the
set of disclosed functionals, not by their raw count (two identical subsets
leak one bit, not two).  The QKD engine uses :func:`gf2_rank` to account for
leakage precisely, and :class:`GF2Matrix` provides the small amount of matrix
machinery needed for that and for the Toeplitz-hash construction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.util.bits import BitString


class GF2Matrix:
    """A dense matrix over GF(2), stored as a list of row bit-masks (ints).

    Row ``i`` is an integer whose bit ``j`` (counting from the least
    significant bit) is the matrix entry ``M[i][j]``.  This representation
    makes row reduction a sequence of integer XORs, which is fast in pure
    Python even for a few thousand columns.
    """

    def __init__(self, rows: Iterable[int], columns: int):
        self.rows: List[int] = [int(r) for r in rows]
        self.columns = int(columns)
        if self.columns < 0:
            raise ValueError("column count must be non-negative")
        mask = (1 << self.columns) - 1
        for row in self.rows:
            if row < 0 or row & ~mask:
                raise ValueError("row value does not fit in the declared column count")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_bitstrings(cls, rows: Sequence[BitString]) -> "GF2Matrix":
        """Build a matrix whose rows are the given bit strings."""
        if not rows:
            return cls([], 0)
        width = len(rows[0])
        for row in rows:
            if len(row) != width:
                raise ValueError("all rows must have the same length")
        # Bit j of the integer corresponds to column j, i.e. row[j] — the
        # LSB-first packing BitString exposes directly.
        return cls([row.to_int_lsb() for row in rows], width)

    @classmethod
    def from_index_sets(cls, subsets: Sequence[Iterable[int]], columns: int) -> "GF2Matrix":
        """Build a matrix whose rows are indicator vectors of index subsets."""
        values = []
        for subset in subsets:
            value = 0
            for index in subset:
                if index < 0 or index >= columns:
                    raise ValueError(f"index {index} out of range for {columns} columns")
                value |= 1 << index
            values.append(value)
        return cls(values, columns)

    @classmethod
    def identity(cls, n: int) -> "GF2Matrix":
        """The n-by-n identity matrix."""
        return cls([1 << i for i in range(n)], n)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def shape(self):
        return (len(self.rows), self.columns)

    def row_bits(self, i: int) -> BitString:
        """Row ``i`` as a :class:`BitString` (column order)."""
        # The row mask is LSB-first (bit j = column j).
        return BitString.from_int_lsb(self.rows[i], self.columns)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GF2Matrix):
            return self.rows == other.rows and self.columns == other.columns
        return NotImplemented

    def __repr__(self) -> str:
        return f"GF2Matrix(shape={self.shape})"

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #

    def rank(self) -> int:
        """Rank over GF(2), via Gaussian elimination on integer rows."""
        return gf2_rank(self.rows)

    def multiply_vector(self, vector: BitString) -> BitString:
        """Matrix-vector product over GF(2); vector index j multiplies column j."""
        if len(vector) != self.columns:
            raise ValueError(
                f"vector length {len(vector)} does not match column count {self.columns}"
            )
        packed = vector.to_int_lsb()
        value = 0
        for row in self.rows:
            value = (value << 1) | ((row & packed).bit_count() & 1)
        return BitString.from_int(value, len(self.rows))

    def append_row(self, row: BitString) -> "GF2Matrix":
        """Return a new matrix with the given row appended."""
        if len(row) != self.columns:
            raise ValueError("row length must match column count")
        return GF2Matrix(self.rows + [row.to_int_lsb()], self.columns)


def gf2_rank(rows: Iterable[int]) -> int:
    """Rank over GF(2) of a collection of rows given as integer bit-masks.

    This is the workhorse used by the leakage accounting: disclosed Cascade
    parities are accumulated as masks and their rank is the number of
    *independent* parity bits revealed to Eve.
    """
    basis: List[int] = []
    for row in rows:
        value = int(row)
        for pivot in basis:
            pivot_bit = pivot & -pivot
            if value & pivot_bit:
                value ^= pivot
        if value:
            basis.append(value)
    return len(basis)


class IncrementalGF2Rank:
    """Incrementally track the rank of a growing set of GF(2) row vectors.

    Cascade discloses parities one message at a time; this class lets the
    protocol engine update the independent-leakage count in O(rank) per new
    subset instead of recomputing the full rank each round.

    The basis is kept in reduced form indexed by pivot bit (the lowest set
    bit of each basis row, which is unique by construction), so reducing a
    new row touches only the pivots that actually hit it instead of scanning
    the whole basis.  When the column count is known, pass it so the tracker
    can stop reducing the moment the basis spans the full space.
    """

    def __init__(self, columns: Optional[int] = None) -> None:
        self._pivots: dict = {}
        self.columns = columns

    @property
    def rank(self) -> int:
        return len(self._pivots)

    def add(self, row_mask: int) -> bool:
        """Add a row; return True if it increased the rank (was independent)."""
        pivots = self._pivots
        if self.columns is not None and len(pivots) >= self.columns:
            return False  # basis already spans the space; nothing can be new
        value = int(row_mask)
        while value:
            low_bit = value & -value
            pivot = pivots.get(low_bit)
            if pivot is None:
                pivots[low_bit] = value
                return True
            value ^= pivot
        return False

    def add_indices(self, indices: Iterable[int]) -> bool:
        """Add a row given as a set of column indices."""
        mask = 0
        for index in indices:
            mask |= 1 << index
        return self.add(mask)


def solve_gf2(matrix: GF2Matrix, rhs: BitString) -> Optional[BitString]:
    """Solve ``M x = rhs`` over GF(2); return one solution or None if inconsistent.

    Used in tests to verify that privacy-amplification hashes are genuinely
    linear maps, and available to downstream users experimenting with
    syndrome-based reconciliation codes.
    """
    if len(rhs) != len(matrix.rows):
        raise ValueError("right-hand side length must equal the number of rows")
    # Build augmented rows: columns bits [0, columns) plus the rhs bit at position `columns`.
    augmented = []
    for row, b in zip(matrix.rows, rhs):
        augmented.append(row | (int(b) << matrix.columns))
    n_cols = matrix.columns

    pivot_rows: List[int] = []
    pivot_cols: List[int] = []
    rows = list(augmented)
    for col in range(n_cols):
        pivot_index = None
        for i, row in enumerate(rows):
            if i in pivot_rows:
                continue
            if (row >> col) & 1:
                pivot_index = i
                break
        if pivot_index is None:
            continue
        pivot_rows.append(pivot_index)
        pivot_cols.append(col)
        for i, row in enumerate(rows):
            if i != pivot_index and (row >> col) & 1:
                rows[i] ^= rows[pivot_index]

    # Check consistency: any all-zero row with a non-zero rhs bit means no solution.
    for i, row in enumerate(rows):
        if row >> n_cols and (row & ((1 << n_cols) - 1)) == 0:
            return None

    solution = [0] * n_cols
    for row_index, col in zip(pivot_rows, pivot_cols):
        solution[col] = (rows[row_index] >> n_cols) & 1
    return BitString(solution)
