"""Linear-Feedback Shift Registers.

The BBN Cascade variant (paper section 5) defines its parity subsets as
"pseudo-random bit strings, from a Linear-Feedback Shift Register (LFSR)" and
identifies each subset on the wire "by a 32-bit seed for the LFSR".  Both
sides expand the same seed to the same subset-selection mask, so only the seed
(not the subset itself) has to cross the public channel.

This module implements a Galois-configuration LFSR over GF(2) plus the helper
that expands a 32-bit seed into a subset mask over ``n`` key positions.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.util.bits import BitString

# Taps for a maximal-length 32-bit Galois LFSR (polynomial
# x^32 + x^22 + x^2 + x + 1), the classic choice for 32-bit registers.
DEFAULT_TAPS_32 = 0x80200003
DEFAULT_WIDTH = 32

# Byte-stepping tables, keyed by (taps, width) and shared by every register
# with the same polynomial.  The Galois step is linear over GF(2), so eight
# steps from state s decompose as the XOR of eight-step images of s's bytes:
# tables[k][b] = (state after 8 steps, 8 output bits MSB-first) for the state
# contribution b << 8k.  Cascade expands half a million subset-mask bits per
# block through these registers, which is why bits() batches by byte.
_BYTE_TABLES: Dict[Tuple[int, int], List[List[Tuple[int, int]]]] = {}


def _byte_tables(taps: int, width: int) -> List[List[Tuple[int, int]]]:
    key = (taps, width)
    tables = _BYTE_TABLES.get(key)
    if tables is None:
        feedback = (taps >> 1) | (1 << (width - 1))
        mask = (1 << width) - 1

        def step8(state: int) -> Tuple[int, int]:
            out = 0
            for k in range(8):
                bit = state & 1
                state >>= 1
                if bit:
                    state ^= feedback
                out |= bit << (7 - k)
            return state & mask, out

        n_bytes = (width + 7) // 8
        tables = [
            [step8((value << (8 * position)) & mask) for value in range(256)]
            for position in range(n_bytes)
        ]
        _BYTE_TABLES[key] = tables
    return tables


# Vectorized (numpy) views of the byte tables, for stepping many registers in
# lock-step: per byte position, a (256,) uint64 state-image table and a
# (256,) uint8 output-byte table.  Built lazily from the scalar tables above.
_VECTOR_TABLES: Dict[Tuple[int, int], Tuple[List[np.ndarray], List[np.ndarray]]] = {}


def _vector_tables(taps: int, width: int) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    key = (taps, width)
    vector = _VECTOR_TABLES.get(key)
    if vector is None:
        if width > 64:
            raise ValueError("vectorized stepping supports registers up to 64 bits")
        tables = _byte_tables(taps, width)
        state_tables = [
            np.fromiter((state for state, _ in table), dtype=np.uint64, count=256)
            for table in tables
        ]
        out_tables = [
            np.fromiter((out for _, out in table), dtype=np.uint8, count=256)
            for table in tables
        ]
        vector = (state_tables, out_tables)
        _VECTOR_TABLES[key] = vector
    return vector


def _expand_bytes_batch(
    seeds: Sequence[int],
    n_bytes: int,
    taps: int = DEFAULT_TAPS_32,
    width: int = DEFAULT_WIDTH,
) -> Tuple[np.ndarray, np.ndarray]:
    """Step one register per seed for ``8 * n_bytes`` steps, all in lock-step.

    Returns ``(rows, states)``: ``rows[i]`` is the ``i``-th register's output
    as ``n_bytes`` stream bytes (each byte MSB-first, exactly the
    :meth:`LFSR.bits` bit order) and ``states[i]`` its register state after
    the expansion.  The per-step work is a handful of numpy table lookups
    over all registers at once instead of a Python loop per register — this
    is what lets Cascade expand a whole round's 64 subset masks as one batch.
    """
    mask = (1 << width) - 1
    states = np.fromiter(
        ((seed & mask) or mask for seed in seeds), dtype=np.uint64, count=len(seeds)
    )
    rows = np.empty((len(seeds), n_bytes), dtype=np.uint8)
    state_tables, out_tables = _vector_tables(taps, width)
    positions = range(len(state_tables))
    for j in range(n_bytes):
        new_states = np.zeros_like(states)
        out = np.zeros(len(states), dtype=np.uint8)
        for position in positions:
            chunk = (states >> np.uint64(8 * position)).astype(np.uint64) & np.uint64(0xFF)
            index = chunk.astype(np.intp)
            new_states ^= state_tables[position][index]
            out ^= out_tables[position][index]
        states = new_states
        rows[:, j] = out
    return rows, states


class LFSR:
    """A Galois LFSR producing a deterministic pseudo-random bit stream."""

    def __init__(self, seed: int, taps: int = DEFAULT_TAPS_32, width: int = DEFAULT_WIDTH):
        if width <= 0:
            raise ValueError("register width must be positive")
        mask = (1 << width) - 1
        if taps & ~mask:
            raise ValueError("tap mask wider than the register")
        self.width = width
        self.taps = taps
        self.mask = mask
        # An all-zero state would be a fixed point; map it to the all-ones
        # state the way hardware implementations commonly do.
        self.state = (seed & mask) or mask
        self.initial_state = self.state

    def step(self) -> int:
        """Advance one step and return the output bit."""
        output = self.state & 1
        self.state >>= 1
        if output:
            self.state ^= self.taps >> 1
            self.state |= 1 << (self.width - 1)
        self.state &= self.mask
        return output

    def bits(self, count: int) -> BitString:
        """Produce the next ``count`` output bits.

        Produces the exact per-:meth:`step` stream, but eight steps at a time
        through the shared byte tables (the step map is linear over GF(2)),
        with a per-bit tail for the last ``count % 8`` bits.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        value = 0
        whole_bytes, tail = divmod(count, 8)
        if whole_bytes:
            tables = _byte_tables(self.taps, self.width)
            state = self.state
            # Accumulate the stream bytes in a bytearray and pack once at the
            # end: one O(n) int.from_bytes instead of n/8 shifts of a growing
            # integer (which would be quadratic in the subset length).
            out_bytes = bytearray(whole_bytes)
            for j in range(whole_bytes):
                new_state = 0
                out = 0
                for position, table in enumerate(tables):
                    state_part, out_part = table[(state >> (8 * position)) & 0xFF]
                    new_state ^= state_part
                    out ^= out_part
                state = new_state
                out_bytes[j] = out
            self.state = state
            value = int.from_bytes(out_bytes, "big")
        for _ in range(tail):
            value = (value << 1) | self.step()
        return BitString.from_int(value, count)

    def stream(self) -> Iterator[int]:
        """An endless iterator of output bits."""
        while True:
            yield self.step()

    def reset(self) -> None:
        """Rewind to the state the register was seeded with."""
        self.state = self.initial_state

    def period_lower_bound(self, limit: int = 1 << 20) -> int:
        """Steps until the state first repeats, up to ``limit`` (for tests)."""
        seen_state = self.state
        for count in range(1, limit + 1):
            self.step()
            if self.state == seen_state:
                return count
        return limit


def lfsr_subset_mask(seed: int, length: int, density: float = 0.5) -> BitString:
    """Expand a 32-bit seed into a pseudo-random subset-selection mask.

    ``density`` is the approximate fraction of key positions included in the
    subset.  The default of one half matches the classic random-subset parity
    check: each position is included independently with probability 1/2, so a
    single parity reveals exactly one bit of information about the key.

    Both Alice and Bob call this with the same seed and length, and therefore
    agree on the subset without ever transmitting it.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    register = LFSR(seed)
    if density == 0.5:
        return register.bits(length)
    # For other densities, use blocks of 8 LFSR bits as a uniform byte and
    # threshold it; this keeps the expansion deterministic and portable.
    threshold = int(round(density * 256))
    bits: List[int] = []
    for _ in range(length):
        byte = register.bits(8).to_int()
        bits.append(1 if byte < threshold else 0)
    return BitString(bits)


def lfsr_subset_masks(
    seeds: Sequence[int], length: int, density: float = 0.5
) -> List[BitString]:
    """Expand many seeds into subset masks at once (Cascade's per-round batch).

    Bit-identical to ``[lfsr_subset_mask(seed, length, density) for seed in
    seeds]`` — the differential tests pin that equivalence — but all the
    registers are stepped in lock-step through the vectorized byte tables,
    so expanding a round's 64 masks costs one batched sweep instead of 64
    independent mask walks.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    if not seeds:
        return []
    if density == 0.5:
        whole_bytes, tail = divmod(length, 8)
        rows, states = _expand_bytes_batch(seeds, whole_bytes)
        masks: List[BitString] = []
        for i, seed in enumerate(seeds):
            value = int.from_bytes(rows[i].tobytes(), "big")
            if tail:
                register = LFSR(seed)
                register.state = int(states[i])
                for _ in range(tail):
                    value = (value << 1) | register.step()
            masks.append(BitString.from_int(value, length))
        return masks
    # Thresholded densities consume one stream byte per key position.
    rows, _ = _expand_bytes_batch(seeds, length)
    threshold = int(round(density * 256))
    below = rows < threshold
    return [
        BitString.from_bytes(np.packbits(row).tobytes())[:length]
        for row in below
    ]


def subset_indices_from_seed(seed: int, length: int, density: float = 0.5) -> List[int]:
    """The indices selected by :func:`lfsr_subset_mask` (convenience for Cascade)."""
    return lfsr_subset_mask(seed, length, density).one_indices()
