"""Linear-Feedback Shift Registers.

The BBN Cascade variant (paper section 5) defines its parity subsets as
"pseudo-random bit strings, from a Linear-Feedback Shift Register (LFSR)" and
identifies each subset on the wire "by a 32-bit seed for the LFSR".  Both
sides expand the same seed to the same subset-selection mask, so only the seed
(not the subset itself) has to cross the public channel.

This module implements a Galois-configuration LFSR over GF(2) plus the helper
that expands a 32-bit seed into a subset mask over ``n`` key positions.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.util.bits import BitString

# Taps for a maximal-length 32-bit Galois LFSR (polynomial
# x^32 + x^22 + x^2 + x + 1), the classic choice for 32-bit registers.
DEFAULT_TAPS_32 = 0x80200003
DEFAULT_WIDTH = 32


class LFSR:
    """A Galois LFSR producing a deterministic pseudo-random bit stream."""

    def __init__(self, seed: int, taps: int = DEFAULT_TAPS_32, width: int = DEFAULT_WIDTH):
        if width <= 0:
            raise ValueError("register width must be positive")
        mask = (1 << width) - 1
        if taps & ~mask:
            raise ValueError("tap mask wider than the register")
        self.width = width
        self.taps = taps
        self.mask = mask
        # An all-zero state would be a fixed point; map it to the all-ones
        # state the way hardware implementations commonly do.
        self.state = (seed & mask) or mask
        self.initial_state = self.state

    def step(self) -> int:
        """Advance one step and return the output bit."""
        output = self.state & 1
        self.state >>= 1
        if output:
            self.state ^= self.taps >> 1
            self.state |= 1 << (self.width - 1)
        self.state &= self.mask
        return output

    def bits(self, count: int) -> BitString:
        """Produce the next ``count`` output bits."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return BitString(self.step() for _ in range(count))

    def stream(self) -> Iterator[int]:
        """An endless iterator of output bits."""
        while True:
            yield self.step()

    def reset(self) -> None:
        """Rewind to the state the register was seeded with."""
        self.state = self.initial_state

    def period_lower_bound(self, limit: int = 1 << 20) -> int:
        """Steps until the state first repeats, up to ``limit`` (for tests)."""
        seen_state = self.state
        for count in range(1, limit + 1):
            self.step()
            if self.state == seen_state:
                return count
        return limit


def lfsr_subset_mask(seed: int, length: int, density: float = 0.5) -> BitString:
    """Expand a 32-bit seed into a pseudo-random subset-selection mask.

    ``density`` is the approximate fraction of key positions included in the
    subset.  The default of one half matches the classic random-subset parity
    check: each position is included independently with probability 1/2, so a
    single parity reveals exactly one bit of information about the key.

    Both Alice and Bob call this with the same seed and length, and therefore
    agree on the subset without ever transmitting it.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    register = LFSR(seed)
    if density == 0.5:
        return register.bits(length)
    # For other densities, use blocks of 8 LFSR bits as a uniform byte and
    # threshold it; this keeps the expansion deterministic and portable.
    threshold = int(round(density * 256))
    bits: List[int] = []
    for _ in range(length):
        byte = register.bits(8).to_int()
        bits.append(1 if byte < threshold else 0)
    return BitString(bits)


def subset_indices_from_seed(seed: int, length: int, density: float = 0.5) -> List[int]:
    """The indices selected by :func:`lfsr_subset_mask` (convenience for Cascade)."""
    mask = lfsr_subset_mask(seed, length, density)
    return [i for i, bit in enumerate(mask) if bit]
