"""Toeplitz-matrix universal hashing.

Toeplitz hashing is the standard alternative construction of a 2-universal
hash family used for both privacy amplification and Wegman-Carter style
authentication.  An ``m x n`` Toeplitz matrix is defined by its first row and
first column (``m + n - 1`` random bits); multiplying the key vector by the
matrix over GF(2) compresses ``n`` bits to ``m`` bits.

Bit-order convention
--------------------

The matrix entry at (row ``r``, column ``c``) is::

    M[r][c] = diagonal_bits[r - c + input_bits - 1]

for ``r`` in ``[0, output_bits)`` and ``c`` in ``[0, input_bits)``.  In words:

* **Row 0** is ``diagonal_bits[0 : input_bits]`` *reversed* — entry (0, 0) is
  ``diagonal_bits[input_bits - 1]``, and the column index increases toward the
  *start* of the defining sequence (entry (0, n-1) is ``diagonal_bits[0]``).
* Moving **down** one row shifts the window one position toward the *end* of
  the defining sequence: row ``r`` is ``diagonal_bits[r : r + input_bits]``
  reversed, so entry (r, 0) is ``diagonal_bits[r + input_bits - 1]``.
* Equivalently, the first row and first column read
  ``diagonal_bits[n-1], diagonal_bits[n-2], ... diagonal_bits[0]`` (row 0,
  left to right) and ``diagonal_bits[n-1], diagonal_bits[n], ...,
  diagonal_bits[m+n-2]`` (column 0, top to bottom).

``tests/test_lfsr_toeplitz_entropy.py`` pins this convention explicitly so the
packed implementation below cannot silently flip it.

Packed implementation
---------------------

With the convention above, output bit ``r`` is the coefficient of
``x^(m + n - 2 - r)`` in the GF(2) polynomial product ``D(x) * K(x)``, where
``D`` is ``diagonal_bits`` and ``K`` the key, both read most-significant-bit
first (the :meth:`~repro.util.bits.BitString.to_int` packing).  The whole hash
is therefore one carry-less multiply followed by a shift-and-mask::

    hash(key) = (clmul(D, K) >> (input_bits - 1)) & ((1 << output_bits) - 1)

The multiply is evaluated with a 256-entry window table (precomputed once per
hash instance): the key is consumed a byte at a time, so a call costs
``O(n/8)`` big-int operations instead of the ``O(m * n)`` per-bit row masks
the original implementation walked.

The DARPA network's own privacy amplification uses the GF(2^n) linear hash of
:mod:`repro.mathkit.gf2n`; the Toeplitz construction is provided as the second
member of the family so the benchmark suite can compare the two (and because
the authentication layer uses it to build short tags).
"""

from __future__ import annotations

from typing import List

from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG


class ToeplitzHash:
    """A hash function drawn from the Toeplitz 2-universal family."""

    def __init__(self, diagonal_bits: BitString, input_bits: int, output_bits: int):
        expected = input_bits + output_bits - 1
        if input_bits <= 0 or output_bits <= 0:
            raise ValueError("input and output lengths must be positive")
        if len(diagonal_bits) != expected:
            raise ValueError(
                f"a {output_bits}x{input_bits} Toeplitz matrix needs {expected} "
                f"defining bits, got {len(diagonal_bits)}"
            )
        self.input_bits = input_bits
        self.output_bits = output_bits
        self.diagonal_bits = diagonal_bits
        self._out_mask = (1 << output_bits) - 1
        self._window_table = None

    @property
    def _window(self):
        """8-bit window table for the carry-less multiply: ``_window[w]`` is
        the GF(2) polynomial product diagonal * w for every byte value w.

        Built on first hash, not at construction: the table is a pure
        function of the diagonal, and a privacy-amplification or
        authentication hash is often constructed long before (or without
        ever) being evaluated — per-epoch link fleets construct hundreds.
        """
        table = self._window_table
        if table is None:
            diagonal = self.diagonal_bits.to_int()
            table = [0] * 256
            for w in range(1, 256):
                table[w] = (table[w >> 1] << 1) ^ (diagonal if w & 1 else 0)
            self._window_table = table
        return table

    # ------------------------------------------------------------------ #

    @classmethod
    def random(
        cls, input_bits: int, output_bits: int, rng: DeterministicRNG
    ) -> "ToeplitzHash":
        """Draw a random member of the family."""
        diagonal = BitString.random(input_bits + output_bits - 1, rng)
        return cls(diagonal, input_bits, output_bits)

    @classmethod
    def from_seed_bits(
        cls, seed_bits: BitString, input_bits: int, output_bits: int
    ) -> "ToeplitzHash":
        """Build the hash from explicit seed bits (e.g. shared secret key bits)."""
        return cls(seed_bits, input_bits, output_bits)

    # ------------------------------------------------------------------ #

    def __call__(self, key: BitString) -> BitString:
        return self.hash(key)

    def hash(self, key: BitString) -> BitString:
        """Compress the key from ``input_bits`` to ``output_bits`` bits."""
        if len(key) != self.input_bits:
            raise ValueError(
                f"expected a {self.input_bits}-bit input, got {len(key)} bits"
            )
        return BitString.from_int(self.hash_value(key.to_int()), self.output_bits)

    def hash_value(self, key_value: int) -> int:
        """Hash a key given as its packed integer (``BitString.to_int`` order).

        Fast path for callers that already hold packed words (the Wegman-Carter
        chaining loop); returns the packed ``output_bits``-bit tag value.
        """
        n = self.input_bits
        # Left-align the key to a byte boundary; clmul(D, K << p) = P << p,
        # so the padding only moves the extraction window.
        n_bytes = (n + 7) // 8
        pad = n_bytes * 8 - n
        data = (key_value << pad).to_bytes(n_bytes, "big")
        table = self._window
        product = 0
        for byte in data:
            product = (product << 8) ^ table[byte]
        return (product >> (pad + n - 1)) & self._out_mask

    def chained_hash_aligned(self, data: bytes, payload_bytes: int, init: int = 0) -> int:
        """Run the whole Wegman-Carter chaining loop over byte-aligned blocks.

        Computes ``digest = T(digest || chunk || zero-pad)`` for consecutive
        ``payload_bytes``-sized chunks of ``data``, starting from ``init``,
        and returns the final packed digest value.  Equivalent to calling
        :meth:`hash_value` on ``(digest << chunk_bits) | chunk`` per chunk,
        but the key bytes feed the window table directly — no per-chunk
        big-int assembly, ``to_bytes`` round trip, or padding shifts.  The
        trailing zero bytes of a short final block contribute one shift
        (``table[0] == 0``).

        Requires ``input_bits``, ``output_bits`` and ``payload_bytes * 8`` to
        tile exactly: ``input_bits == output_bits + 8 * payload_bytes`` with
        both bit counts byte-aligned (the authentication layer's default
        256/32 geometry).  Callers with exotic geometries use the generic
        :meth:`hash_value` path instead.
        """
        if self.input_bits % 8 or self.output_bits % 8:
            raise ValueError("chained_hash_aligned requires byte-aligned geometry")
        if self.output_bits + 8 * payload_bytes != self.input_bits:
            raise ValueError(
                "payload bytes must fill input_bits minus the chained digest"
            )
        table = self._window
        out_bytes = self.output_bits // 8
        shift = self.input_bits - 1
        mask = self._out_mask
        digest = init
        for start in range(0, len(data), payload_bytes):
            chunk = data[start : start + payload_bytes]
            product = 0
            for byte in digest.to_bytes(out_bytes, "big"):
                product = (product << 8) ^ table[byte]
            for byte in chunk:
                product = (product << 8) ^ table[byte]
            pad = payload_bytes - len(chunk)
            if pad:
                product <<= 8 * pad
            digest = (product >> shift) & mask
        return digest

    def matrix_rows(self) -> List[BitString]:
        """The rows of the Toeplitz matrix (mainly for tests and inspection).

        Row ``r`` is ``diagonal_bits[r : r + input_bits]`` reversed — see the
        module docstring for the full entry-(r, c) convention.
        """
        n = self.input_bits
        diagonal = self.diagonal_bits.to_list()
        return [
            BitString(reversed(diagonal[r : r + n])) for r in range(self.output_bits)
        ]

    def seed_length(self) -> int:
        """Number of random bits that define this hash."""
        return self.input_bits + self.output_bits - 1

    def __repr__(self) -> str:
        return f"ToeplitzHash({self.input_bits} -> {self.output_bits} bits)"
