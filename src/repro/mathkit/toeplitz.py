"""Toeplitz-matrix universal hashing.

Toeplitz hashing is the standard alternative construction of a 2-universal
hash family used for both privacy amplification and Wegman-Carter style
authentication.  An ``m x n`` Toeplitz matrix is defined by its first row and
first column (``m + n - 1`` random bits); multiplying the key vector by the
matrix over GF(2) compresses ``n`` bits to ``m`` bits.

The DARPA network's own privacy amplification uses the GF(2^n) linear hash of
:mod:`repro.mathkit.gf2n`; the Toeplitz construction is provided as the second
member of the family so the benchmark suite can compare the two (and because
the authentication layer uses it to build short tags).
"""

from __future__ import annotations

from typing import List

from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG


class ToeplitzHash:
    """A hash function drawn from the Toeplitz 2-universal family."""

    def __init__(self, diagonal_bits: BitString, input_bits: int, output_bits: int):
        expected = input_bits + output_bits - 1
        if input_bits <= 0 or output_bits <= 0:
            raise ValueError("input and output lengths must be positive")
        if len(diagonal_bits) != expected:
            raise ValueError(
                f"a {output_bits}x{input_bits} Toeplitz matrix needs {expected} "
                f"defining bits, got {len(diagonal_bits)}"
            )
        self.input_bits = input_bits
        self.output_bits = output_bits
        self.diagonal_bits = diagonal_bits
        # Precompute each row as an integer mask for fast multiply.
        # Row i of the Toeplitz matrix is diagonal_bits[i : i + input_bits]
        # reversed relative to the defining sequence convention below.
        self._row_masks: List[int] = []
        for row in range(output_bits):
            mask = 0
            for column in range(input_bits):
                # Entry (row, column) = diagonal_bits[row - column + input_bits - 1]
                bit = diagonal_bits[row - column + input_bits - 1]
                if bit:
                    mask |= 1 << column
            self._row_masks.append(mask)

    # ------------------------------------------------------------------ #

    @classmethod
    def random(
        cls, input_bits: int, output_bits: int, rng: DeterministicRNG
    ) -> "ToeplitzHash":
        """Draw a random member of the family."""
        diagonal = BitString.random(input_bits + output_bits - 1, rng)
        return cls(diagonal, input_bits, output_bits)

    @classmethod
    def from_seed_bits(
        cls, seed_bits: BitString, input_bits: int, output_bits: int
    ) -> "ToeplitzHash":
        """Build the hash from explicit seed bits (e.g. shared secret key bits)."""
        return cls(seed_bits, input_bits, output_bits)

    # ------------------------------------------------------------------ #

    def __call__(self, key: BitString) -> BitString:
        return self.hash(key)

    def hash(self, key: BitString) -> BitString:
        """Compress the key from ``input_bits`` to ``output_bits`` bits."""
        if len(key) != self.input_bits:
            raise ValueError(
                f"expected a {self.input_bits}-bit input, got {len(key)} bits"
            )
        packed = 0
        for column, bit in enumerate(key):
            if bit:
                packed |= 1 << column
        output = []
        for mask in self._row_masks:
            output.append(bin(mask & packed).count("1") & 1)
        return BitString(output)

    def matrix_rows(self) -> List[BitString]:
        """The rows of the Toeplitz matrix (mainly for tests and inspection)."""
        rows = []
        for mask in self._row_masks:
            rows.append(BitString(((mask >> c) & 1) for c in range(self.input_bits)))
        return rows

    def seed_length(self) -> int:
        """Number of random bits that define this hash."""
        return self.input_bits + self.output_bits - 1

    def __repr__(self) -> str:
        return f"ToeplitzHash({self.input_bits} -> {self.output_bits} bits)"
