"""Contact schedules and contact-graph routing over an intermittent mesh.

The trusted-relay mesh of the paper assumes a live end-to-end path whenever
key material must move.  A disruption-tolerant deployment — satellite
passes, mobile relays, scheduled fiber maintenance — replaces that
assumption with a *contact plan*: per-link windows during which the link
can actually carry material.  This module provides

* :class:`ContactWindow` / :class:`ContactSchedule` — the plan itself,
  buildable directly or from the fault plane's
  :class:`~repro.faults.flaps.FlapWindow` outage schedules (a contact is
  exactly the complement of an outage);
* :class:`ContactGraphSelector` — a :class:`~repro.network.routing
  .PathSelector` that knows the plan: instantaneous routing over the edges
  open *now* (:meth:`ContactGraphSelector.find_path_at`) and
  earliest-arrival routing over the time-varying contact graph
  (:meth:`ContactGraphSelector.earliest_arrival`, the contact-graph-routing
  primitive the scheduled forwarding policy plans with).

Edges absent from a schedule are treated as always-available; the live
``usable`` flag of every edge (cuts, detected eavesdroppers) still gates
regardless of the plan, so a scheduled contact over a cut fiber is not a
contact.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.faults.flaps import FlapWindow, invert_windows
from repro.network.routing import PathSelector, RoutingError, _describe_reachable
from repro.network.topology import QKDNetwork

Edge = Tuple[str, str]


@dataclass(frozen=True)
class ContactWindow:
    """One contact: the edge can carry material on ``[start, end)``.

    ``end`` may be ``math.inf`` (the link stays up once its last known
    outage heals — the shape :meth:`ContactSchedule.from_flaps` produces).
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("a contact window must end at or after it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def open_at(self, time: float) -> bool:
        return self.start <= time < self.end


def _normalise(windows: Sequence[ContactWindow]) -> Tuple[ContactWindow, ...]:
    """Sort, merge overlapping/adjacent windows, drop zero-duration ones."""
    ordered = sorted(
        (w for w in windows if w.duration > 0), key=lambda w: (w.start, w.end)
    )
    merged: List[ContactWindow] = []
    for window in ordered:
        if merged and window.start <= merged[-1].end:
            if window.end > merged[-1].end:
                merged[-1] = ContactWindow(merged[-1].start, window.end)
            continue
        merged.append(window)
    return tuple(merged)


class ContactSchedule:
    """Per-edge contact plans, keyed by the sorted node pair.

    An edge with no plan is *unscheduled*: treated as always-open (subject
    to its live ``usable`` flag).  An edge with a plan is open exactly
    during its windows — an empty plan means the edge never opens.
    """

    def __init__(
        self,
        edge_windows: Optional[Mapping[Edge, Sequence[ContactWindow]]] = None,
    ):
        self._windows: Dict[Edge, Tuple[ContactWindow, ...]] = {}
        for (node_a, node_b), windows in (edge_windows or {}).items():
            self.set_windows(node_a, node_b, windows)

    @staticmethod
    def _key(node_a: str, node_b: str) -> Edge:
        return tuple(sorted((node_a, node_b)))

    def set_windows(
        self, node_a: str, node_b: str, windows: Sequence[ContactWindow]
    ) -> None:
        self._windows[self._key(node_a, node_b)] = _normalise(windows)

    def windows_for(self, node_a: str, node_b: str) -> Optional[Tuple[ContactWindow, ...]]:
        """The edge's plan, or ``None`` for an unscheduled (always-open) edge."""
        return self._windows.get(self._key(node_a, node_b))

    def is_open(self, node_a: str, node_b: str, time: float) -> bool:
        windows = self.windows_for(node_a, node_b)
        if windows is None:
            return True
        return any(w.open_at(time) for w in windows)

    def next_open(self, node_a: str, node_b: str, time: float) -> Optional[float]:
        """The earliest instant ``>= time`` the edge is open (``time`` itself
        if open now); ``None`` if the plan never opens it again."""
        windows = self.windows_for(node_a, node_b)
        if windows is None:
            return time
        for window in windows:
            if window.open_at(time):
                return time
            if window.start >= time and window.duration > 0:
                return window.start
        return None

    def boundary_times(self, horizon: float = math.inf) -> List[float]:
        """Every distinct finite window edge (starts and ends) up to
        ``horizon`` — the instants at which the contact graph changes, hence
        the natural tick schedule for a store-and-forward engine."""
        times = set()
        for windows in self._windows.values():
            for window in windows:
                for t in (window.start, window.end):
                    if math.isfinite(t) and t <= horizon:
                        times.add(t)
        return sorted(times)

    @classmethod
    def from_flaps(
        cls, edge_flaps: Mapping[Edge, Sequence[FlapWindow]]
    ) -> "ContactSchedule":
        """A contact plan from the fault plane's outage schedules.

        Each edge's contacts are the complement of its flap windows over
        ``[0, inf)`` (via :func:`repro.faults.flaps.invert_windows`): the
        link carries material exactly when it is not down, and stays open
        after its last known outage heals.
        """
        schedule = cls()
        for (node_a, node_b), flaps in edge_flaps.items():
            windows = [ContactWindow(start, end) for start, end in invert_windows(list(flaps))]
            schedule.set_windows(node_a, node_b, windows)
        return schedule

    def __repr__(self) -> str:
        scheduled = len(self._windows)
        windows = sum(len(w) for w in self._windows.values())
        return f"ContactSchedule({scheduled} edges, {windows} windows)"


class ContactGraphSelector(PathSelector):
    """A path selector that knows when edges are available, not just whether.

    With ``schedule=None`` it degrades to *live mode*: an edge is open iff
    its ``usable`` flag is set right now — the view a relay has of a mesh
    whose outages it cannot predict.  With a schedule it additionally
    honours the contact plan, and can plan ahead with
    :meth:`earliest_arrival`.
    """

    def __init__(
        self,
        network: QKDNetwork,
        schedule: Optional[ContactSchedule] = None,
        metric: str = "hops",
    ):
        super().__init__(network, metric=metric)
        self.schedule = schedule

    # ------------------------------------------------------------------ #
    # The instantaneous contact graph
    # ------------------------------------------------------------------ #

    def edge_open(self, node_a: str, node_b: str, time: float) -> bool:
        """Whether material can cross the edge at ``time`` (live state AND
        contact plan)."""
        if not self.network.link(node_a, node_b).usable:
            return False
        if self.schedule is None:
            return True
        return self.schedule.is_open(node_a, node_b, time)

    def open_subgraph(self, time: float) -> nx.Graph:
        """The subgraph of edges open at ``time`` (all nodes retained)."""
        graph = self.network.graph
        open_graph = nx.Graph()
        open_graph.add_nodes_from(graph.nodes(data=True))
        for node_a, node_b, data in graph.edges(data=True):
            if self.edge_open(node_a, node_b, time):
                open_graph.add_edge(node_a, node_b, **data)
        return open_graph

    def find_path_at(self, source: str, destination: str, time: float) -> List[str]:
        """The best path over edges open at ``time`` (ends inclusive)."""
        open_graph = self.open_subgraph(time)
        for name in (source, destination):
            if name not in open_graph:
                raise RoutingError(
                    f"unknown node {name!r} in route {source!r} -> {destination!r}"
                )
        try:
            return nx.shortest_path(
                open_graph, source, destination, weight=self._edge_weight
            )
        except nx.NetworkXNoPath as exc:
            raise RoutingError(
                f"no open contact path from {source!r} to {destination!r} "
                f"at t={time:g}s; " + _describe_reachable(open_graph, source)
            ) from exc

    def reachable_at(self, source: str, time: float) -> List[str]:
        """All nodes reachable from ``source`` over edges open at ``time``
        (sorted; always contains ``source``)."""
        open_graph = self.open_subgraph(time)
        if source not in open_graph:
            raise RoutingError(f"unknown node {source!r}")
        return sorted(nx.node_connected_component(open_graph, source))

    # ------------------------------------------------------------------ #
    # Contact-graph routing (earliest arrival)
    # ------------------------------------------------------------------ #

    def earliest_arrival(
        self, source: str, destination: str, start_time: float
    ) -> Tuple[List[str], float]:
        """The route minimising arrival time over the contact plan.

        Dijkstra over time: material sitting at a node waits for the next
        contact window of each outgoing edge and crosses instantaneously
        within it (hop transmission time is negligible against window
        durations at QKD key-block sizes).  Returns ``(path, arrival_time)``;
        raises :class:`RoutingError` when no sequence of future contacts
        ever connects the two nodes.  Requires a schedule (live mode cannot
        see the future).
        """
        if self.schedule is None:
            raise RoutingError(
                "earliest-arrival routing needs a contact schedule "
                "(live mode only knows the present)"
            )
        graph = self.network.graph
        for name in (source, destination):
            if name not in graph:
                raise RoutingError(
                    f"unknown node {name!r} in route {source!r} -> {destination!r}"
                )
        best: Dict[str, float] = {source: start_time}
        parent: Dict[str, str] = {}
        heap: List[Tuple[float, str]] = [(start_time, source)]
        while heap:
            time, node = heapq.heappop(heap)
            if time > best.get(node, math.inf):
                continue
            if node == destination:
                break
            for neighbor in sorted(graph.neighbors(node)):
                if not self.network.link(node, neighbor).usable:
                    continue
                opens = self.schedule.next_open(node, neighbor, time)
                if opens is None:
                    continue
                if opens < best.get(neighbor, math.inf):
                    best[neighbor] = opens
                    parent[neighbor] = node
                    heapq.heappush(heap, (opens, neighbor))
        if destination not in best:
            reached = sorted(best)
            raise RoutingError(
                f"no future contact path from {source!r} to {destination!r} "
                f"starting t={start_time:g}s; {len(reached)} node(s) ever "
                f"reachable from {source!r}: {', '.join(reached)}"
            )
        path = [destination]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        return path, best[destination]


__all__ = [
    "ContactGraphSelector",
    "ContactSchedule",
    "ContactWindow",
]
