"""Pluggable forwarding policies: where a custody bundle moves, and when.

Both policies are invoked per live bundle at every transport tick (and once
at submission) and express their decisions through the transport's
``move_copy`` / ``replicate_copy`` primitives, which enforce pad
availability, custody banking, duplicate suppression and delivery.  The
two ends of the DTN trade-off space:

``scheduled``
    Single-copy, plan-driven.  With a contact schedule the bundle follows
    the earliest-arrival route over the contact graph (contact-graph
    routing), advancing along it as far as contacts currently open allow
    and parking at the node where the next contact has not opened yet.
    Without a schedule (live mode) it advances greedily to the reachable
    node nearest the destination — the "furthest reachable custodian".
    Cheapest in pad and storage; delivery is as good as the plan.

``epidemic``
    Multi-copy flooding with duplicate suppression: every open contact
    from a node holding a copy infects the neighbour, unless that
    neighbour has already held one.  Per-contact infection is gated by a
    Bernoulli draw from the labeled stream ``dtn/epidemic/<n>`` (the
    ``n``-th replication decision ever; probability 1.0 by default, so the
    flood is deterministic unless deliberately thinned).  Most robust to
    plan error and most expensive in pad — the overhead bench E19 measures.

Determinism contract: policies make no unlabeled draws, and iterate
bundles, copies and neighbours in sorted order, so a run's forwarding
history is a pure function of (seed, topology, schedule, demand sequence).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Type

import networkx as nx

from repro.network.routing import RoutingError

if TYPE_CHECKING:  # circular at runtime: transport builds the policy
    from repro.dtn.store import CustodyBundle
    from repro.dtn.transport import CustodyTransport


class ForwardingPolicy:
    """Decides per-bundle hops when contact windows open."""

    name = ""

    def forward(
        self, transport: "CustodyTransport", bundle: "CustodyBundle", now: float
    ) -> None:
        """Advance ``bundle`` as far as the open contacts allow."""
        raise NotImplementedError


class ScheduledPolicy(ForwardingPolicy):
    """Single-copy earliest-arrival forwarding over the contact graph."""

    name = "scheduled"

    def _route(
        self, transport: "CustodyTransport", custodian: str, destination: str, now: float
    ) -> List[str]:
        selector = transport.selector
        if selector.schedule is not None:
            path, _arrival = selector.earliest_arrival(custodian, destination, now)
            return path
        # Live mode: no plan to consult, so advance toward the reachable
        # node with the smallest static distance to the destination.
        reachable = selector.reachable_at(custodian, now)
        best = min(
            reachable,
            key=lambda node: (transport.static_distance(node, destination), node),
        )
        if best == custodian:
            return [custodian]
        return nx.shortest_path(selector.open_subgraph(now), custodian, best)

    def forward(
        self, transport: "CustodyTransport", bundle: "CustodyBundle", now: float
    ) -> None:
        (custodian,) = transport.locations(bundle)
        try:
            path = self._route(transport, custodian, bundle.destination, now)
        except RoutingError:
            return  # no route even in the future: park and wait (or expire)
        for node_a, node_b in zip(path, path[1:]):
            if not transport.selector.edge_open(node_a, node_b, now):
                break  # the plan's next contact has not opened yet
            if not transport.move_copy(bundle, node_a, node_b, now):
                break  # pad shortage on the hop: retry at a later tick
            if not bundle.live:
                break  # arrived


class EpidemicPolicy(ForwardingPolicy):
    """Flooding with duplicate suppression (and optional thinning).

    One generation of infection per tick: the copy set is snapshotted
    before spreading, so a neighbour infected this tick forwards no earlier
    than the next — keeping the spread order independent of dict/set
    iteration.
    """

    name = "epidemic"

    def __init__(self, infect_probability: float = 1.0):
        if not 0.0 <= infect_probability <= 1.0:
            raise ValueError("infection probability must be in [0, 1]")
        self.infect_probability = infect_probability

    def forward(
        self, transport: "CustodyTransport", bundle: "CustodyBundle", now: float
    ) -> None:
        graph = transport.network.graph
        for holder in transport.locations(bundle):
            for neighbor in sorted(graph.neighbors(holder)):
                if not bundle.live:
                    return
                if neighbor in transport.seen(bundle):
                    continue  # duplicate suppression: it has held a copy before
                if not transport.selector.edge_open(holder, neighbor, now):
                    continue
                stream = transport.next_epidemic_stream()
                if not stream.bernoulli(self.infect_probability):
                    continue
                transport.replicate_copy(bundle, holder, neighbor, now)


POLICIES: Dict[str, Type[ForwardingPolicy]] = {
    ScheduledPolicy.name: ScheduledPolicy,
    EpidemicPolicy.name: EpidemicPolicy,
}


def build_policy(policy: "str | ForwardingPolicy") -> ForwardingPolicy:
    """Resolve a policy name (or pass an instance through), loudly."""
    if isinstance(policy, ForwardingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown forwarding policy {policy!r} "
            f"(choices: {sorted(POLICIES)})"
        ) from None


__all__ = [
    "POLICIES",
    "EpidemicPolicy",
    "ForwardingPolicy",
    "ScheduledPolicy",
    "build_policy",
]
