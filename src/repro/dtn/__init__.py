"""Disruption-tolerant key relay: custody transfer over a contact plan.

The trusted-relay transport of :mod:`repro.network.relay` assumes a live
end-to-end path at the moment a key must move; when the mesh partitions,
transport starves.  This package removes that assumption with the
standard DTN toolkit, specialised to OTP key material:

* :mod:`repro.dtn.contact` — contact windows/schedules (buildable from
  the fault plane's flap windows) and a contact-graph
  :class:`~repro.dtn.contact.ContactGraphSelector` with earliest-arrival
  routing;
* :mod:`repro.dtn.store` — bounded per-relay custody stores with TTLs
  and deterministic eviction;
* :mod:`repro.dtn.policies` — pluggable forwarding (``scheduled``
  contact-graph routing vs ``epidemic`` flooding with duplicate
  suppression);
* :mod:`repro.dtn.transport` — the custody engine tying them together,
  with exact terminal accounting and an order-independent delivered
  digest.
"""

from repro.dtn.contact import ContactGraphSelector, ContactSchedule, ContactWindow
from repro.dtn.policies import (
    POLICIES,
    EpidemicPolicy,
    ForwardingPolicy,
    ScheduledPolicy,
    build_policy,
)
from repro.dtn.store import (
    DELIVERED,
    EVICTED,
    EXPIRED,
    CustodyBundle,
    CustodyError,
    CustodyStore,
    CustodyStoreStats,
)
from repro.dtn.transport import CustodyMetrics, CustodyTransport

__all__ = [
    "DELIVERED",
    "EVICTED",
    "EXPIRED",
    "POLICIES",
    "ContactGraphSelector",
    "ContactSchedule",
    "ContactWindow",
    "CustodyBundle",
    "CustodyError",
    "CustodyMetrics",
    "CustodyStore",
    "CustodyStoreStats",
    "CustodyTransport",
    "EpidemicPolicy",
    "ForwardingPolicy",
    "ScheduledPolicy",
    "build_policy",
]
