"""Custody bundles and the bounded per-relay custody store.

When no live path exists, key material does not die — it is *banked*: a
relay accepts custody of an OTP-encrypted key bundle and holds it until a
contact window lets it move closer to its destination.  Custody is a
liability as well as a service, so the store is explicitly bounded in both
dimensions the DTN literature bounds it in:

* **time** — every bundle carries an expiry (``created_at + ttl``); expired
  bundles are dropped and counted, never delivered;
* **space** — the store holds at most ``capacity_bits`` of bundle payload;
  banking beyond that evicts existing bundles *deterministically* (closest
  expiry first, bundle id as the tiebreak), each eviction counted.

The store is plain bounded storage; bundle lifecycle (which copy is the
last, what terminal state an eviction implies) is the
:class:`~repro.dtn.transport.CustodyTransport`'s job — a store never
decides a bundle's fate, it only reports what it dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.util.bits import BitString

#: Terminal bundle states (``""`` while in custody / in flight).
DELIVERED = "delivered"
EXPIRED = "expired"
EVICTED = "evicted"


class CustodyError(Exception):
    """Raised on custody contract violations (oversized bundle, bad node)."""


@dataclass
class CustodyBundle:
    """One end-to-end key in store-and-forward flight.

    The key material is drawn from the labeled stream ``dtn/bundle/<id>``
    at submission, so it is a pure function of ``(custody seed, bundle
    id)`` — the property that makes delivered material digest-identical
    between an always-connected run and an intermittent one that delivers
    the same bundles later.
    """

    bundle_id: int
    source: str
    destination: str
    key: BitString
    created_at: float
    expires_at: float
    #: ``""`` while live, then one of :data:`DELIVERED` / :data:`EXPIRED`
    #: / :data:`EVICTED`.
    state: str = ""
    delivered_at: Optional[float] = None
    #: Copy moves made on behalf of this bundle (all copies, all hops).
    hops: int = 0
    #: Pairwise pad spent moving this bundle's copies, in bits.
    pad_bits_consumed: int = 0

    @property
    def key_bits(self) -> int:
        return len(self.key)

    @property
    def live(self) -> bool:
        return self.state == ""

    def expired_by(self, now: float) -> bool:
        return now >= self.expires_at


@dataclass
class CustodyStoreStats:
    """Lifetime accounting for one node's custody store."""

    bundles_banked: int = 0
    bits_banked: int = 0
    bundles_evicted: int = 0
    bits_evicted: int = 0
    bundles_expired: int = 0
    bits_expired: int = 0
    occupancy_peak_bits: int = 0


class CustodyStore:
    """Bounded custody storage for one node of the mesh."""

    def __init__(self, node: str, capacity_bits: int = 1 << 20):
        if capacity_bits <= 0:
            raise ValueError("custody capacity must be positive")
        self.node = node
        self.capacity_bits = capacity_bits
        self.stats = CustodyStoreStats()
        self._bundles: Dict[int, CustodyBundle] = {}

    # ------------------------------------------------------------------ #
    # Levels
    # ------------------------------------------------------------------ #

    @property
    def occupancy_bits(self) -> int:
        return sum(b.key_bits for b in self._bundles.values())

    def __len__(self) -> int:
        return len(self._bundles)

    def holds(self, bundle_id: int) -> bool:
        return bundle_id in self._bundles

    def bundle_ids(self) -> List[int]:
        """Held bundle ids in ascending order (the deterministic scan order)."""
        return sorted(self._bundles)

    def bundle(self, bundle_id: int) -> CustodyBundle:
        return self._bundles[bundle_id]

    # ------------------------------------------------------------------ #
    # Banking / removal
    # ------------------------------------------------------------------ #

    def bank(self, bundle: CustodyBundle) -> List[CustodyBundle]:
        """Accept custody of ``bundle``; returns the bundles evicted for room.

        Eviction is deterministic: while the store would overflow, the held
        bundle closest to expiry goes first (``(expires_at, bundle_id)``
        order) — it is the one most likely to die unconsummated anyway.  A
        bundle larger than the whole store is a contract violation
        (:class:`CustodyError`), not an eviction storm.
        """
        if bundle.key_bits > self.capacity_bits:
            raise CustodyError(
                f"bundle {bundle.bundle_id} ({bundle.key_bits} bits) exceeds "
                f"custody store capacity at {self.node!r} ({self.capacity_bits} bits)"
            )
        if bundle.bundle_id in self._bundles:
            raise CustodyError(
                f"bundle {bundle.bundle_id} already in custody at {self.node!r}"
            )
        evicted: List[CustodyBundle] = []
        occupancy = self.occupancy_bits
        while occupancy + bundle.key_bits > self.capacity_bits:
            victim_id = min(
                self._bundles,
                key=lambda bid: (self._bundles[bid].expires_at, bid),
            )
            victim = self._bundles.pop(victim_id)
            occupancy -= victim.key_bits
            self.stats.bundles_evicted += 1
            self.stats.bits_evicted += victim.key_bits
            evicted.append(victim)
        self._bundles[bundle.bundle_id] = bundle
        self.stats.bundles_banked += 1
        self.stats.bits_banked += bundle.key_bits
        occupancy += bundle.key_bits
        if occupancy > self.stats.occupancy_peak_bits:
            self.stats.occupancy_peak_bits = occupancy
        return evicted

    def remove(self, bundle_id: int) -> CustodyBundle:
        """Release custody of one bundle (it moved on, was purged, ...)."""
        try:
            return self._bundles.pop(bundle_id)
        except KeyError:
            raise CustodyError(
                f"bundle {bundle_id} is not in custody at {self.node!r}"
            ) from None

    def take_expired(self, now: float) -> List[CustodyBundle]:
        """Remove and return every bundle past its expiry, in id order."""
        expired = [
            self._bundles.pop(bid)
            for bid in self.bundle_ids()
            if self._bundles[bid].expired_by(now)
        ]
        for bundle in expired:
            self.stats.bundles_expired += 1
            self.stats.bits_expired += bundle.key_bits
        return expired

    def __repr__(self) -> str:
        return (
            f"CustodyStore({self.node!r}: {len(self._bundles)} bundles, "
            f"{self.occupancy_bits}/{self.capacity_bits} bits)"
        )


__all__ = [
    "DELIVERED",
    "EVICTED",
    "EXPIRED",
    "CustodyBundle",
    "CustodyError",
    "CustodyStore",
    "CustodyStoreStats",
]
