"""Store-and-forward custody transport of OTP key material.

:class:`CustodyTransport` is the engine the forwarding policies drive: it
owns one bounded :class:`~repro.dtn.store.CustodyStore` per mesh node,
mints bundles, moves or replicates their copies across open contacts
(consuming pairwise pad exactly as live relay transport does — one
encrypt/decrypt per hop), and keeps terminal accounting exact: every
submitted bundle ends in exactly one of ``delivered`` / ``expired`` /
``evicted``, with no leak states and no copies left in any store once the
transport drains.

Determinism contract
--------------------
* Bundle ``n``'s key material comes from the labeled stream
  ``dtn/bundle/<n>`` — a pure function of the custody seed and the bundle
  index, independent of topology, timing or route.
* The ``k``-th epidemic replication decision ever draws from
  ``dtn/epidemic/<k>``.
* The delivered digest is *order-independent* (a hash over the sorted
  per-bundle digests), so a run that delivers the same bundles later — or
  by flooding instead of by plan — produces the identical digest.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

import networkx as nx

from repro.dtn.contact import ContactGraphSelector, ContactSchedule
from repro.dtn.policies import ForwardingPolicy, build_policy
from repro.dtn.store import DELIVERED, EVICTED, EXPIRED, CustodyBundle, CustodyStore
from repro.network.relay import TrustedRelayNetwork
from repro.network.routing import RoutingError
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG


@dataclass
class CustodyMetrics:
    """Lifetime accounting across the whole custody transport."""

    bundles_submitted: int = 0
    bundles_delivered: int = 0
    bundles_expired: int = 0
    bundles_evicted: int = 0
    #: Copy movements (single-copy hops) and replications (new copies).
    copy_moves: int = 0
    copies_made: int = 0
    #: Redundant copies dropped after delivery, eviction of a non-last
    #: copy, or expiry of a non-last copy.
    duplicate_copies_purged: int = 0
    pad_bits_consumed: int = 0
    #: Hops declined because the pairwise pool could not cover the bundle.
    pad_shortages: int = 0

    @property
    def terminal_total(self) -> int:
        return self.bundles_delivered + self.bundles_expired + self.bundles_evicted


class CustodyTransport:
    """Custody banking plus policy-driven forwarding over a contact plan."""

    def __init__(
        self,
        relays: TrustedRelayNetwork,
        schedule: Optional[ContactSchedule] = None,
        rng: Optional[DeterministicRNG] = None,
        policy: "str | ForwardingPolicy" = "scheduled",
        ttl_seconds: float = 3600.0,
        capacity_bits: int = 1 << 20,
    ):
        if ttl_seconds <= 0:
            raise ValueError("custody TTL must be positive")
        self.relays = relays
        self.network = relays.network
        self.selector = ContactGraphSelector(
            relays.network, schedule=schedule, metric=relays.selector.metric
        )
        self.rng = rng or DeterministicRNG(0)
        self.policy = build_policy(policy)
        self.ttl_seconds = float(ttl_seconds)
        self.metrics = CustodyMetrics()
        self.stores: Dict[str, CustodyStore] = {
            name: CustodyStore(name, capacity_bits)
            for name in sorted(relays.network.graph.nodes)
        }
        #: Every bundle ever submitted, live or terminal, by id.
        self.bundles: Dict[int, CustodyBundle] = {}
        #: End-to-end latency of each delivered bundle, in submission order.
        self.delivered_latencies: List[float] = []
        self._seen: Dict[int, Set[str]] = {}
        self._next_bundle_id = 0
        self._next_epidemic = 0
        self._bundle_digests: List[str] = []
        self._on_delivered: Optional[Callable[[CustodyBundle], None]] = None
        self._distances: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def bind(self, on_delivered: Callable[[CustodyBundle], None]) -> None:
        """Register the delivery callback (the KMS deposits keys here)."""
        self._on_delivered = on_delivered

    def next_epidemic_stream(self) -> DeterministicRNG:
        """The labeled stream for the next epidemic replication decision."""
        stream = self.rng.fork_labeled(f"dtn/epidemic/{self._next_epidemic}")
        self._next_epidemic += 1
        return stream

    def static_distance(self, node: str, destination: str) -> float:
        """Hop distance over the full (fault-free) topology, ``inf`` when the
        two nodes are statically disconnected."""
        if destination not in self._distances:
            self._distances[destination] = nx.single_source_shortest_path_length(
                self.network.graph, destination
            )
        return self._distances[destination].get(node, math.inf)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def locations(self, bundle: CustodyBundle) -> List[str]:
        """Nodes currently holding a copy of ``bundle``, sorted."""
        return [
            name
            for name in sorted(self.stores)
            if self.stores[name].holds(bundle.bundle_id)
        ]

    def seen(self, bundle: CustodyBundle) -> Set[str]:
        """Nodes that ever held a copy (the duplicate-suppression set)."""
        return self._seen[bundle.bundle_id]

    def live_bundle_ids(self) -> List[int]:
        return [bid for bid in sorted(self.bundles) if self.bundles[bid].live]

    def in_flight_bits(self, source: str, destination: str) -> int:
        """Bits of live custody material submitted for ``source -> destination``
        (what a caller may count against a replenishment target while the
        bundles are still in flight)."""
        return sum(
            bundle.key_bits
            for bundle in self.bundles.values()
            if bundle.live
            and bundle.source == source
            and bundle.destination == destination
        )

    @property
    def drained(self) -> bool:
        """No live bundles remain anywhere."""
        return all(not bundle.live for bundle in self.bundles.values())

    @property
    def reconciled(self) -> bool:
        """Terminal accounting is exact: every submitted bundle reached one
        terminal state and no store still holds a copy of a terminal bundle."""
        if self.metrics.terminal_total + len(self.live_bundle_ids()) != (
            self.metrics.bundles_submitted
        ):
            return False
        if self.drained and any(len(store) for store in self.stores.values()):
            return False
        return all(
            self.bundles[bid].state in ("", DELIVERED, EXPIRED, EVICTED)
            for bid in self.bundles
        )

    @property
    def occupancy_peak_bits(self) -> int:
        """The largest instantaneous occupancy any single store reached."""
        if not self.stores:
            return 0
        return max(store.stats.occupancy_peak_bits for store in self.stores.values())

    @property
    def delivered_digest(self) -> str:
        """Order-independent digest over all delivered key material."""
        outer = hashlib.sha256()
        for item in sorted(self._bundle_digests):
            outer.update(item.encode())
            outer.update(b"\n")
        return outer.hexdigest()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(
        self, source: str, destination: str, key_bits: int, now: float
    ) -> CustodyBundle:
        """Mint a bundle for ``source -> destination`` and bank it.

        The bundle is banked at the source, then immediately forwarded as
        far as the contacts open *now* allow — all the way to delivery when
        a live path happens to exist.  A statically disconnected (or
        unknown) destination is a :class:`RoutingError`: custody buys time,
        not topology.
        """
        if key_bits <= 0 or key_bits % 8:
            raise ValueError("key length must be a positive multiple of 8 bits")
        graph = self.network.graph
        for name in (source, destination):
            if name not in graph:
                raise RoutingError(
                    f"unknown node {name!r} in route {source!r} -> {destination!r}"
                )
        if math.isinf(self.static_distance(source, destination)):
            component = sorted(nx.node_connected_component(graph, source))
            raise RoutingError(
                f"no possible QKD path from {source!r} to {destination!r} even "
                f"with every link up; {len(component)} node(s) reachable from "
                f"{source!r}: {', '.join(component)}"
            )
        bundle_id = self._next_bundle_id
        self._next_bundle_id += 1
        key = BitString.random(
            key_bits, self.rng.fork_labeled(f"dtn/bundle/{bundle_id}")
        )
        bundle = CustodyBundle(
            bundle_id=bundle_id,
            source=source,
            destination=destination,
            key=key,
            created_at=now,
            expires_at=now + self.ttl_seconds,
        )
        self.bundles[bundle_id] = bundle
        self._seen[bundle_id] = {source}
        self.metrics.bundles_submitted += 1
        if source == destination:
            self._deliver(bundle, now)
            return bundle
        self._bank(bundle, source, now)
        if bundle.live:
            self.policy.forward(self, bundle, now)
        return bundle

    # ------------------------------------------------------------------ #
    # Copy movement (the primitives policies drive)
    # ------------------------------------------------------------------ #

    def _cross_hop(self, bundle: CustodyBundle, node_a: str, node_b: str) -> bool:
        """Spend pairwise pad carrying the bundle across one link.

        Mirrors live relay transport exactly: the key is OTP-encrypted onto
        the wire with the hop's pairwise pool and decrypted at the far end
        with the same pad bytes (one shared pool per link models both
        ends).  Returns ``False`` — consuming nothing — when the pool
        cannot cover the bundle.
        """
        pad = self.relays.pad_for(node_a, node_b)
        key_bytes = bundle.key.to_bytes()
        if pad.available_bytes < len(key_bytes):
            self.metrics.pad_shortages += 1
            return False
        hop_pad_bytes = pad.peek(len(key_bytes))
        ciphertext = pad.encrypt(key_bytes)
        self.relays.notify_pad_change(node_a, node_b)
        arrived = bytes(c ^ p for c, p in zip(ciphertext, hop_pad_bytes))
        assert arrived == key_bytes  # the far end recovers the key exactly
        bits = len(key_bytes) * 8
        bundle.hops += 1
        bundle.pad_bits_consumed += bits
        self.metrics.pad_bits_consumed += bits
        self._seen[bundle.bundle_id].add(node_b)
        return True

    def move_copy(
        self, bundle: CustodyBundle, node_a: str, node_b: str, now: float
    ) -> bool:
        """Move the copy at ``node_a`` one hop to ``node_b`` (single-copy
        forwarding).  Delivers on arrival at the destination."""
        if not bundle.live or not self.stores[node_a].holds(bundle.bundle_id):
            return False
        if not self.selector.edge_open(node_a, node_b, now):
            return False
        if not self._cross_hop(bundle, node_a, node_b):
            return False
        self.stores[node_a].remove(bundle.bundle_id)
        self.metrics.copy_moves += 1
        if node_b == bundle.destination:
            self._deliver(bundle, now)
        else:
            self._bank(bundle, node_b, now)
        return True

    def replicate_copy(
        self, bundle: CustodyBundle, node_a: str, node_b: str, now: float
    ) -> bool:
        """Copy the bundle from ``node_a`` to ``node_b``, keeping the
        original (epidemic spread).  Delivers on arrival at the destination."""
        if not bundle.live or not self.stores[node_a].holds(bundle.bundle_id):
            return False
        if not self.selector.edge_open(node_a, node_b, now):
            return False
        if not self._cross_hop(bundle, node_a, node_b):
            return False
        self.metrics.copies_made += 1
        if node_b == bundle.destination:
            self._deliver(bundle, now)
        else:
            self._bank(bundle, node_b, now)
        return True

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _bank(self, bundle: CustodyBundle, node: str, now: float) -> None:
        for victim in self.stores[node].bank(bundle):
            self._copy_dropped(victim, EVICTED, now)

    def _copy_dropped(self, victim: CustodyBundle, reason: str, now: float) -> None:
        """Account for one copy leaving a store without moving on.

        Only the *last* copy of a live bundle is terminal; dropping a
        redundant copy (epidemic duplicates, copies of already-delivered
        bundles) is bookkeeping, not a lost key.
        """
        if not victim.live or self.locations(victim):
            self.metrics.duplicate_copies_purged += 1
            return
        victim.state = reason
        if reason == EVICTED:
            self.metrics.bundles_evicted += 1
        else:
            self.metrics.bundles_expired += 1

    def _deliver(self, bundle: CustodyBundle, now: float) -> None:
        bundle.state = DELIVERED
        bundle.delivered_at = now
        self.metrics.bundles_delivered += 1
        self.delivered_latencies.append(now - bundle.created_at)
        digest = hashlib.sha256()
        digest.update(
            f"{bundle.bundle_id}|{bundle.source}|{bundle.destination}"
            f"|{bundle.key_bits}|".encode()
        )
        digest.update(bundle.key.to_bytes())
        self._bundle_digests.append(digest.hexdigest())
        # Purge redundant copies eagerly: delivered material never lingers
        # in custody, so TTL expiry can never invade it.
        for node in self.locations(bundle):
            self.stores[node].remove(bundle.bundle_id)
            self.metrics.duplicate_copies_purged += 1
        if self._on_delivered is not None:
            self._on_delivered(bundle)

    # ------------------------------------------------------------------ #
    # The clock face
    # ------------------------------------------------------------------ #

    def tick(self, now: float) -> None:
        """Advance the custody layer to ``now``: expire overdue copies,
        then let the policy forward every live bundle (in id order)."""
        for name in sorted(self.stores):
            for victim in self.stores[name].take_expired(now):
                self._copy_dropped(victim, EXPIRED, now)
        for bundle_id in self.live_bundle_ids():
            bundle = self.bundles[bundle_id]
            if bundle.live:
                self.policy.forward(self, bundle, now)

    def tick_times(self, until: float) -> List[float]:
        """The instants the custody layer should tick at, up to ``until``:
        every contact-plan boundary plus ``until`` itself (so final expiry
        and the last contact are both observed)."""
        times: List[float] = []
        if self.selector.schedule is not None:
            times = [
                t for t in self.selector.schedule.boundary_times(until) if t <= until
            ]
        if not times or times[-1] < until:
            times.append(until)
        return times

    def run_until(self, until: float, start: float = 0.0) -> None:
        """Drive the transport over every tick time in ``(start, until]``
        (standalone use; the KMS schedules ticks on its own event loop)."""
        for time in self.tick_times(until):
            if time > start:
                self.tick(time)

    def __repr__(self) -> str:
        m = self.metrics
        return (
            f"CustodyTransport(policy={self.policy.name!r}, "
            f"submitted={m.bundles_submitted}, delivered={m.bundles_delivered}, "
            f"expired={m.bundles_expired}, evicted={m.bundles_evicted})"
        )


__all__ = ["CustodyMetrics", "CustodyTransport"]
