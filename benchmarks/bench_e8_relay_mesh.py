"""E8 — Trusted relay meshes: robustness and interconnection cost (sections 3, 8).

Paper claims: "a meshed QKD network is inherently far more robust than any
single point-to-point link since it offers multiple paths for key
distribution"; "QKD networks can be engineered with as much redundancy as
desired simply by adding more links and relays"; and they "reduce the
required (N x N-1)/2 point-to-point links to as few as N links".

Part one measures end-to-end key-delivery availability versus the number of
failed links for a point-to-point link and for the relay mesh.  Part two
regenerates the interconnection-cost comparison.
"""

from benchmarks.conftest import run_once
from repro.network import QKDNetwork, TrustedRelayNetwork, interconnection_cost
from repro.util.rng import DeterministicRNG

FAILURE_COUNTS = [0, 1, 2, 3]
TRIALS_PER_POINT = 12


def _availability_after_failures(build_network, n_failures, trials, seed):
    """Fraction of trials in which an end-to-end key can still be delivered."""
    successes = 0
    for trial in range(trials):
        rng = DeterministicRNG(seed * 1000 + trial)
        network, source, destination = build_network(rng)
        relay = TrustedRelayNetwork(network, rng.fork("relay"))
        relay.run_links_for(120.0)
        network.fail_random_links(n_failures)
        if relay.transport_with_reroute(source, destination, 128).success:
            successes += 1
    return successes / trials


def _point_to_point(rng):
    return QKDNetwork.point_to_point(10.0), "alice", "bob"


def _mesh(rng):
    network = QKDNetwork.relay_mesh(n_endpoints=2, n_relays=5, extra_cross_links=3, rng=rng)
    # Dual-home each endpoint ("as much redundancy as desired simply by adding
    # more links and relays"), so no single access-fiber cut isolates it.
    network.add_link("endpoint-0", "relay-2", 10.0)
    network.add_link("endpoint-1", "relay-3", 10.0)
    return network, "endpoint-0", "endpoint-1"


def test_e8_mesh_robustness_vs_point_to_point(benchmark, table):
    def experiment():
        rows = []
        for failures in FAILURE_COUNTS:
            p2p = _availability_after_failures(_point_to_point, failures, TRIALS_PER_POINT, seed=1)
            mesh = _availability_after_failures(_mesh, failures, TRIALS_PER_POINT, seed=2)
            rows.append((failures, p2p, mesh))
        return rows

    rows = run_once(benchmark, experiment)
    table(
        "E8: key-delivery availability vs failed links",
        ["links failed", "point-to-point", "relay mesh"],
        [[f, f"{p:.0%}", f"{m:.0%}"] for f, p, m in rows],
    )
    availability = {f: (p, m) for f, p, m in rows}
    # With no failures both deliver.
    assert availability[0] == (1.0, 1.0)
    # A single failure kills the point-to-point link outright but not the mesh.
    assert availability[1][0] == 0.0
    assert availability[1][1] >= 0.9
    # The mesh degrades gracefully: even with 3 failed links it usually delivers.
    assert availability[3][1] >= 0.5
    # The mesh strictly dominates the point-to-point link at every failure count.
    assert all(m >= p for _, p, m in rows)


def test_e8_eavesdropping_triggers_reroute(benchmark, table):
    """Links shut down for eavesdropping are treated like cut fibers by routing."""

    def experiment():
        rng = DeterministicRNG(5)
        network = QKDNetwork.relay_mesh(n_endpoints=2, n_relays=5, extra_cross_links=3, rng=rng)
        relay = TrustedRelayNetwork(network, rng.fork("relay"))
        relay.run_links_for(120.0)
        healthy = relay.transport_key("endpoint-0", "endpoint-1", 128)
        network.mark_eavesdropped(healthy.path[1], healthy.path[2])
        rerouted = relay.transport_with_reroute("endpoint-0", "endpoint-1", 128)
        return healthy, rerouted

    healthy, rerouted = run_once(benchmark, experiment)
    table(
        "E8: routing around a link with detected eavesdropping",
        ["scenario", "delivered", "path"],
        [
            ["healthy network", healthy.success, " -> ".join(healthy.path)],
            ["after eavesdropping detected", rerouted.success, " -> ".join(rerouted.path)],
        ],
    )
    assert healthy.success and rerouted.success
    assert rerouted.path != healthy.path


def test_e8_interconnection_cost(benchmark, table):
    def experiment():
        return [(n, interconnection_cost(n)) for n in (2, 4, 8, 16, 32, 64)]

    rows = run_once(benchmark, experiment)
    table(
        "E8: links needed to interconnect N enclaves",
        ["N", "pairwise N(N-1)/2", "QKD network (star) N"],
        [[n, cost["pairwise_links"], cost["star_links"]] for n, cost in rows],
    )
    for n, cost in rows:
        assert cost["pairwise_links"] == n * (n - 1) // 2
        assert cost["star_links"] == n
        if n > 3:
            assert cost["star_links"] < cost["pairwise_links"]
