"""E16 (networked delivery) — asyncio KMS front-end throughput.

The first wall-clock concurrency benchmark in the suite: a
:class:`~repro.netkms.server.NetworkKmsServer` serves per-pair
:class:`~repro.kms.store.KeyStore` reservoirs to fleets of concurrent
:class:`~repro.netkms.client.NetworkKmsClient` SAEs over the versioned
binary protocol.  Each fleet level serves the *same* total request volume
(reserve + consume of fixed-size keys, round-robin across the pairs) from
identically refilled stores, so the table isolates what client concurrency
does to requests/s and to the reserve-latency tail.

Always asserted:

* the served-key digest (order-independent sha256 over every delivered
  chunk) is **identical at every concurrency level** — interleaving may
  reorder who gets which chunk, but the material served off the stores'
  FIFO pools must be exactly the same bits;
* zero protocol errors and zero denied reservations (the stores are
  provisioned to cover the demand), at every level;
* every request is answered: keys served == requests issued.

Knobs for CI smoke runs: ``BENCH_E16_REQUESTS`` (total get_key calls per
level, default 360), ``BENCH_E16_BITS`` (key size, default 1024),
``BENCH_E16_PAIRS`` (stores, default 4), ``BENCH_E16_CLIENTS`` (largest
fleet, default 16).  With ``BENCH_JSON_DIR`` set the table lands in
``BENCH_bench_e16_netkms_throughput.json`` for the nightly trajectory.
"""

import asyncio
import struct
import time

from benchmarks.conftest import int_env, run_once
from repro.kms.store import KeyStore
from repro.netkms.client import NetworkKmsClient
from repro.netkms.server import NetworkKmsServer
from repro.util.bits import BitString

REQUESTS = int_env("BENCH_E16_REQUESTS", 360, minimum=8)
BITS = int_env("BENCH_E16_BITS", 1024, minimum=64)
N_PAIRS = int_env("BENCH_E16_PAIRS", 4, minimum=1)
MAX_CLIENTS = int_env("BENCH_E16_CLIENTS", 16, minimum=2)

CLIENT_LEVELS = tuple(sorted({1, min(4, MAX_CLIENTS), MAX_CLIENTS}))


def build_stores():
    """One store per pair, provisioned to cover the whole request volume.

    The material is a per-pair counter stream (every 64-bit word unique), so
    any cross-client overlap or corruption would move the served digest.
    """
    per_pair = -(-REQUESTS // N_PAIRS) * BITS  # ceil-divided demand
    stores = {}
    for index in range(N_PAIRS):
        pair = (f"sae-{index}a", f"sae-{index}b")
        # Water marks scale with capacity: reduced smoke knobs can push the
        # capacity below the stock high-water default, and no replenishment
        # loop watches these stores anyway.
        store = KeyStore(
            pair, capacity_bits=2 * per_pair, low_water_bits=0, high_water_bits=per_pair
        )
        words = per_pair // 64
        material = b"".join(
            struct.pack(">Q", (index << 48) | word) for word in range(words)
        )
        store.deposit(BitString.from_bytes(material))
        stores[pair] = store
    return stores


async def run_level(n_clients):
    """Serve REQUESTS get_key calls across ``n_clients`` concurrent SAEs."""
    stores = build_stores()
    pairs = sorted(stores)
    server = NetworkKmsServer(stores, port=0)

    async def one_client(client_index, n_requests):
        async with NetworkKmsClient(
            "127.0.0.1", server.port, client_id=f"sae-{client_index}"
        ) as client:
            for request_index in range(n_requests):
                pair = pairs[(client_index + request_index) % len(pairs)]
                await client.get_key(pair, bits=BITS)

    async with server:
        started = time.perf_counter()
        share = [REQUESTS // n_clients] * n_clients
        for extra in range(REQUESTS % n_clients):
            share[extra] += 1
        await asyncio.gather(
            *(one_client(index, count) for index, count in enumerate(share))
        )
        wall = time.perf_counter() - started
    return server.metrics.report(), wall


def test_e16_netkms_throughput(benchmark, table):
    def experiment():
        return {level: asyncio.run(run_level(level)) for level in CLIENT_LEVELS}

    results = run_once(benchmark, experiment)

    rows = []
    for level, (report, wall) in results.items():
        rows.append(
            [
                level,
                REQUESTS,
                f"{REQUESTS / wall:.0f}",
                f"{report.requests_per_second:.0f}",
                f"{report.reserve_latency_p50_seconds * 1e6:.0f}",
                f"{report.reserve_latency_p99_seconds * 1e6:.0f}",
                report.keys_served,
                sum(report.protocol_errors.values()),
                report.served_digest[:12],
            ]
        )
    table(
        f"E16: netkms front end, {REQUESTS} x {BITS}-bit get_key over "
        f"{N_PAIRS} pairs",
        [
            "clients",
            "requests",
            "keys/s",
            "req/s",
            "rsv p50 us",
            "rsv p99 us",
            "served",
            "proto errs",
            "digest",
        ],
        rows,
    )

    digests = {report.served_digest for report, _wall in results.values()}
    # Concurrency may reorder who gets which chunk, never which material is
    # served: identical stores must yield one digest at every fleet size.
    assert len(digests) == 1, "client concurrency changed the served key material"
    for level, (report, _wall) in results.items():
        assert report.keys_served == REQUESTS, f"{level} clients: requests unanswered"
        assert report.key_bits_served == REQUESTS * BITS
        assert not report.protocol_errors, f"{level} clients: protocol errors"
        assert report.reservations_denied == 0, f"{level} clients: denials"
        assert (
            report.reserve_latency_p50_seconds <= report.reserve_latency_p99_seconds
        )
