"""E10 — Eavesdropping: detection of intercept-resend, accounting of PNS (sections 1, 6).

Paper claims:

* "any eavesdropper (Eve) that snoops on the quantum channel will cause a
  measurable disturbance to the flow of single photons.  Alice and Bob can
  detect this" — intercept-resend raises the QBER by ~25 % of the intercepted
  fraction and the engine aborts the affected blocks;
* beam-splitting / PNS attacks cause no disturbance and must be covered by
  the multi-photon terms of entropy estimation;
* the leak from multi-photon pulses is "proportional to the number of
  transmitted bits times the multi-photon probability" for a weak-coherent
  source but "only proportional to the number of received bits" for an
  entangled source.
"""

from benchmarks.conftest import run_once
from repro.core.entropy_estimation import EntropyEstimator, EntropyInputs, BennettDefense
from repro.eve import BeamSplittingAttack, InterceptResendAttack
from repro.link import LinkParameters, QKDLink
from repro.optics.channel import ChannelParameters, QuantumChannel
from repro.util.rng import DeterministicRNG

INTERCEPT_FRACTIONS = [0.0, 0.25, 0.5, 1.0]


def test_e10_intercept_resend_detection(benchmark, table):
    def experiment():
        rows = []
        for fraction in INTERCEPT_FRACTIONS:
            link = QKDLink(LinkParameters.paper_link(), DeterministicRNG(41), name=f"ir-{fraction}")
            if fraction > 0:
                link.attach_attack(InterceptResendAttack(fraction))
            # The clean baseline runs longer so it accumulates full blocks and
            # demonstrably produces key; the attacked runs only need enough
            # traffic to show the QBER jump and the aborts.
            report = link.run_seconds(3.0 if fraction == 0.0 else 1.0)
            rows.append((fraction, report.mean_qber, report.distilled_bits, report.blocks_aborted))
        return rows

    rows = run_once(benchmark, experiment)
    table(
        "E10: intercept-resend — QBER and key output vs intercepted fraction",
        ["intercepted", "QBER", "theory: intrinsic + f/4", "distilled bits", "blocks aborted"],
        [
            [f"{f:.0%}", f"{q:.1%}", f"{0.067 + 0.25 * f:.1%}", bits, aborted]
            for f, q, bits, aborted in rows
        ],
    )
    qber = {f: q for f, q, _, _ in rows}
    distilled = {f: d for f, _, d, _ in rows}
    aborted = {f: a for f, _, _, a in rows}
    # QBER rises monotonically with the intercepted fraction, reaching ~25%+intrinsic.
    assert qber[0.0] < qber[0.25] < qber[0.5] < qber[1.0]
    assert qber[1.0] > 0.22
    # Detection: the full attack yields no key and aborted blocks; the clean link yields key.
    assert distilled[0.0] > 0
    assert distilled[1.0] == 0
    assert aborted[1.0] >= 1


def test_e10_pns_attack_is_silent_but_charged(benchmark, table):
    def experiment():
        clean_channel = QuantumChannel(ChannelParameters.paper_operating_point(), DeterministicRNG(42))
        pns_channel = QuantumChannel(ChannelParameters.paper_operating_point(), DeterministicRNG(42))
        clean = clean_channel.transmit(1_500_000)
        attack = BeamSplittingAttack()
        tapped = pns_channel.transmit(1_500_000, attack=attack)
        eve_known = BeamSplittingAttack.eve_known_sifted_bits(tapped)
        # What entropy estimation charges for a block of that size:
        estimator = EntropyEstimator(defense=BennettDefense())
        inputs = EntropyInputs(
            sifted_bits=tapped.n_sifted,
            error_bits=tapped.n_sifted_errors,
            transmitted_pulses=tapped.n_slots,
            disclosed_parities=0,
            mean_photon_number=0.1,
        )
        charge = estimator.estimate(inputs).transparent.information_bits
        return clean, tapped, eve_known, charge

    clean, tapped, eve_known, charge = run_once(benchmark, experiment)
    table(
        "E10: photon-number-splitting — no disturbance, covered by accounting",
        ["quantity", "clean link", "under PNS"],
        [
            ["QBER", f"{clean.qber:.1%}", f"{tapped.qber:.1%}"],
            ["sifted bits", clean.n_sifted, tapped.n_sifted],
            ["bits Eve actually holds", 0, eve_known],
            ["multi-photon charge (bits)", "-", f"{charge:.0f}"],
        ],
    )
    # No detectable disturbance.
    assert abs(tapped.qber - clean.qber) < 0.02
    # But the entropy estimate's multi-photon charge covers what Eve took.
    assert charge >= eve_known * 0.8


def test_e10_weak_coherent_vs_entangled_accounting(benchmark, table):
    def experiment():
        sifted = 2000
        transmitted = 600_000
        estimator = EntropyEstimator(defense=BennettDefense(), worst_case_multiphoton=True)
        weak = estimator.estimate(
            EntropyInputs(
                sifted_bits=sifted, error_bits=100, transmitted_pulses=transmitted,
                disclosed_parities=700, mean_photon_number=0.1, entangled_source=False,
            )
        )
        entangled = estimator.estimate(
            EntropyInputs(
                sifted_bits=sifted, error_bits=100, transmitted_pulses=transmitted,
                disclosed_parities=700, mean_photon_number=0.1, entangled_source=True,
            )
        )
        return weak, entangled

    weak, entangled = run_once(benchmark, experiment)
    table(
        "E10: worst-case multi-photon charge — weak-coherent vs entangled source",
        ["source", "transparent charge (bits)", "distillable bits"],
        [
            ["weak-coherent (transmitted-based)", f"{weak.transparent.information_bits:.0f}", weak.distillable_bits],
            ["entangled (received-based)", f"{entangled.transparent.information_bits:.0f}", entangled.distillable_bits],
        ],
    )
    # The paper's comparison: under like assumptions the weak-coherent source is
    # charged far more (here the worst case wipes out the whole block), while the
    # entangled source keeps a usable key.
    assert weak.transparent.information_bits > entangled.transparent.information_bits * 5
    assert entangled.distillable_bits > weak.distillable_bits
    assert weak.distillable_bits == 0
