"""E20 (metro scale) — zoned KMS soak from tens to a thousand-plus pairs.

The metro question: what does it cost to *schedule* a city?  This bench
soaks a four-zone metro mesh (:func:`repro.kms.build_metro_mesh`) at three
fleet sizes — endpoints per zone swept so the consumer-pair count grows
from tens to 1k+ — under a fixed-total aggregate rekey demand
(:class:`repro.kms.AggregateProfile`), so the *scheduling* cost is the
variable and the work delivered is comparable across levels.

The table reports keys/s, rekey latency p50/p99, trunk throughput and —
the point of the sweep — scheduler overhead per epoch: the wall-clock cost
of ordering work (needy-store heap, expiry sweeps, per-zone link
selection), as accounted by ``SoakReport.scheduler_overhead_per_epoch_seconds``.

Always asserted: demand accounting closes at every level, and the
delivered-key digest at the smallest level is bit-identical for 1 vs 2
replenishment workers (the zoned determinism contract).  With the
sub-linearity gate on (default), scheduler overhead/epoch must grow
markedly slower than the pair count — the flat implementation's full
sort-everything-per-epoch behavior would fail this.

Knobs for CI smoke runs: ``BENCH_E20_PAIRS`` (comma-separated
endpoints-per-zone levels, default ``2,5,12``), ``BENCH_E20_HOURS``
(simulated hours per level, default 0.5), ``BENCH_E20_ZONES``,
``BENCH_E20_EPOCH_SECONDS``, ``BENCH_E20_REQUIRE_SUBLINEAR`` (``0``
disables the growth gate for tiny smoke sweeps).  With ``BENCH_JSON_DIR``
set the table lands in ``BENCH_bench_e20_metro_soak.json``.
"""

import os
import time

from benchmarks.conftest import float_env, int_env, run_once
from repro.kms import (
    AggregateProfile,
    KeyManagementService,
    KmsConfig,
    ReplenishmentConfig,
    build_metro_mesh,
)
from repro.util.rng import DeterministicRNG

HOURS = float_env("BENCH_E20_HOURS", 0.5, minimum=0.05)
N_ZONES = int_env("BENCH_E20_ZONES", 4, minimum=2)
EPOCH_SECONDS = float_env("BENCH_E20_EPOCH_SECONDS", 300.0, minimum=1.0)
REQUIRE_SUBLINEAR = int_env("BENCH_E20_REQUIRE_SUBLINEAR", 1, minimum=0)
#: Endpoints per zone at each sweep level; with 4 zones the defaults give
#: C(8,2)=28, C(20,2)=190 and C(48,2)=1128 consumer pairs.
LEVELS = tuple(
    int(raw) for raw in os.environ.get("BENCH_E20_PAIRS", "2,5,12").split(",")
)
#: Tunnels across the whole metro, split over however many pairs a level
#: has — total demand is level-invariant.
TOTAL_TUNNELS = int_env("BENCH_E20_TUNNELS", 20_000, minimum=1)


def _soak(endpoints_per_zone, workers):
    relays, plan = build_metro_mesh(
        n_zones=N_ZONES,
        endpoints_per_zone=endpoints_per_zone,
        relays_per_zone=3,
        rng=DeterministicRNG(20),
        prefill_seconds=240.0,
        workers=workers,
    )
    n_endpoints = N_ZONES * endpoints_per_zone
    n_pairs = n_endpoints * (n_endpoints - 1) // 2
    config = (
        KmsConfig(
            replenishment=ReplenishmentConfig(
                epoch_seconds=EPOCH_SECONDS, workers=workers, backend="thread"
            ),
            store_high_water_bits=4_096,
            store_low_water_bits=2_048,
            transport_key_bits=2_048,
        )
        .with_zones(plan)
        .with_workload(
            AggregateProfile.poisson(
                tunnels=max(TOTAL_TUNNELS // n_pairs, 1),
                mean_interval_seconds=3_600.0,
            )
        )
    )
    service = KeyManagementService(relays, config, rng=DeterministicRNG(3))
    started = time.perf_counter()
    report = service.serve(hours=HOURS)
    wall = time.perf_counter() - started
    return n_pairs, report, wall


def test_e20_metro_soak(benchmark, table):
    def experiment():
        results = {}
        for endpoints_per_zone in LEVELS:
            results[endpoints_per_zone] = _soak(endpoints_per_zone, workers=1)
        # Determinism probe: the smallest level again on 2 workers.
        results["replay@2w"] = _soak(LEVELS[0], workers=2)
        return results

    results = run_once(benchmark, experiment)

    rows = []
    for name, (n_pairs, report, wall) in results.items():
        rows.append(
            [
                name,
                n_pairs,
                report.demands,
                report.rekeys_completed,
                f"{report.keys_per_second:.4f}",
                f"{report.rekey_latency_p50_seconds:.2f}",
                f"{report.rekey_latency_p99_seconds:.2f}",
                report.trunk_keys_delivered,
                f"{report.scheduler_overhead_per_epoch_seconds * 1e3:.3f}",
                f"{wall:.2f}",
            ]
        )
    table(
        f"E20: {HOURS:g}h metro soak, {N_ZONES} zones, "
        f"epz swept over {','.join(map(str, LEVELS))}",
        [
            "epz",
            "pairs",
            "demands",
            "rekeys",
            "keys/s",
            "p50 s",
            "p99 s",
            "trunk keys",
            "sched ms/epoch",
            "wall s",
        ],
        rows,
    )

    for name, (_pairs, report, _wall) in results.items():
        assert report.completion_accounted, f"{name}: demands unaccounted"
        assert report.delivered_keys > 0, f"{name}: nothing delivered"
        assert report.zones == N_ZONES

    small_pairs, small, _ = results[LEVELS[0]]
    _, replay, _ = results["replay@2w"]
    assert small.delivered_digest == replay.delivered_digest, (
        "worker count changed the zoned delivered key material"
    )

    if REQUIRE_SUBLINEAR and len(LEVELS) > 1:
        big_pairs, big, _ = results[LEVELS[-1]]
        pair_growth = big_pairs / small_pairs
        overhead_growth = big.scheduler_overhead_per_epoch_seconds / max(
            small.scheduler_overhead_per_epoch_seconds, 1e-9
        )
        # The indexed scheduler must not pay full-sort cost per epoch: its
        # per-epoch overhead growth stays well under the pair-count growth.
        assert overhead_growth < 0.5 * pair_growth, (
            f"scheduler overhead grew {overhead_growth:.1f}x for a "
            f"{pair_growth:.1f}x pair-count increase — not sub-linear"
        )
