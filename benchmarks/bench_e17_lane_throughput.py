"""E17 (hot path) — aggregate epoch throughput of the lane engine.

A metro mesh replenishes key material in short homogeneous epochs across the
whole fleet at once, which is the worst case for the
:class:`~repro.runtime.farm.LinkFarm` process backend: its workers are
stateless, so every epoch pays pool spawn, per-job pickling *and* fresh link
construction, because no worker can hold a link's protocol state between
``farm.run`` calls.  The lane engine (:mod:`repro.lanes`) holds the entire
fleet in-process and runs each epoch as one ``(n_links, n_slots)`` numpy
batch program — construction happens once, and per-epoch cost is just the
batch itself.  This benchmark models that replenishment cadence directly:
``BENCH_E17_EPOCHS`` epochs of one Qframe (4096 slots) per link, swept over
fleet sizes, reporting **aggregate slots per second**.

Arms:

* **lanes** — one persistent :class:`LaneEngine`, ``run_slots`` per epoch;
* **farm** — one ``LinkFarm(backend="process").run`` per epoch with that
  epoch's fresh jobs, exactly the :class:`ReplenishmentScheduler` montecarlo
  cadence (per-epoch seeds, links rebuilt in the workers each time);
* **inline** — the same persistent fleet run sequentially one link at a
  time through ``QKDLink.run_slots``; not part of the gate, but it is the
  bit-identity reference: the lane arm's sifted streams must match it
  byte for byte.

Assertions:

* **bit-identity** (always) — for every fleet size, each link's sifted
  stream (``engine.pending_sifted_key``) and cumulative report are
  byte-identical between the lane engine and inline sequential execution;
* **throughput** — at the 64-lane sweep point the lane engine must beat the
  per-epoch process farm by at least ``BENCH_E17_MIN_SPEEDUP`` (default
  3.0) in aggregate slots/s.  ``BENCH_E17_REQUIRE_SPEEDUP=0`` disables the
  gate (what the CI smoke job and the nightly trajectory do on shared
  runners).

``BENCH_E17_SLOTS`` resizes the epoch, ``BENCH_E17_MAX_LANES`` caps the
sweep for smoke runs, and ``BENCH_E17_WORKERS`` (default 4) sizes the farm
arm's pool — the default keeps the pool genuinely engaged even on a 1-CPU
host, where the farm's own ``workers=None`` sizing would silently degrade
to an inline loop and stop exercising the backend under test.  With
``BENCH_JSON_DIR`` set the table lands in
``BENCH_bench_e17_lane_throughput.json`` for the perf-trajectory tooling.
"""

import hashlib
import os
import time
from dataclasses import replace

from benchmarks.conftest import float_env, int_env, run_once
from repro.lanes import LaneEngine
from repro.link.qkd_link import LinkParameters, QKDLink
from repro.optics.channel import ChannelParameters
from repro.runtime.farm import LinkFarm
from repro.util.rng import DeterministicRNG

EPOCH_SLOTS = int_env("BENCH_E17_SLOTS", 4096, minimum=1)  # one Qframe
EPOCHS = int_env("BENCH_E17_EPOCHS", 8, minimum=1)
MAX_LANES = int_env("BENCH_E17_MAX_LANES", 256, minimum=1)
LANE_SWEEP = tuple(n for n in (8, 64, 256) if n <= MAX_LANES) or (MAX_LANES,)
#: The sweep point the speedup gate reads (the ISSUE's 64-lane criterion).
GATE_LANES = 64 if 64 in LANE_SWEEP else LANE_SWEEP[-1]
WORKERS = int_env("BENCH_E17_WORKERS", 4, minimum=1)
MIN_SPEEDUP = float_env("BENCH_E17_MIN_SPEEDUP", 3.0)
#: Timed repetitions per arm; the fastest is reported, which keeps a
#: single-shot scheduling hiccup on a busy host from tripping the gate.
REPS = int_env("BENCH_E17_REPS", 2, minimum=1)


def _parameters():
    return LinkParameters(
        channel=ChannelParameters.for_distance(10.0), slots_per_batch=EPOCH_SLOTS
    )


def _fleet_jobs(n_lanes):
    """The persistent fleet the lane and inline arms share."""
    return LinkFarm.jobs(
        n_lanes, EPOCH_SLOTS, parameters=_parameters(), rng=DeterministicRNG(17)
    )


def _link_digest(link):
    """Byte-level digest of one link's sifted stream and cumulative stats."""
    alice, bob = link.engine.pending_sifted_key
    digest = hashlib.sha256()
    digest.update(str(alice).encode())
    digest.update(str(bob).encode())
    stats = link.engine.statistics
    digest.update(
        repr((stats.sifted_bits, stats.sifted_errors, stats.slots_processed)).encode()
    )
    return digest.hexdigest()


def _run_lane_fleet(jobs):
    engine = LaneEngine(jobs)
    started = time.perf_counter()
    for _ in range(EPOCHS):
        engine.run_slots(EPOCH_SLOTS, flush=False)
    elapsed = time.perf_counter() - started
    return elapsed, [_link_digest(link) for link in engine.links]


def _run_inline_fleet(jobs):
    links = [
        QKDLink(job.parameters, DeterministicRNG(job.seed), name=job.name)
        for job in jobs
    ]
    started = time.perf_counter()
    for _ in range(EPOCHS):
        for link in links:
            link.run_slots(EPOCH_SLOTS, flush=False)
    elapsed = time.perf_counter() - started
    return elapsed, [_link_digest(link) for link in links]


def _run_farm_epochs(n_lanes):
    """The scheduler cadence: fresh per-epoch jobs through the process pool."""
    farm = LinkFarm(workers=WORKERS, backend="process")
    root = DeterministicRNG(17)
    started = time.perf_counter()
    for epoch in range(EPOCHS):
        jobs = [
            replace(
                job,
                seed=root.fork_labeled(f"epoch/{epoch}/{job.name}").seed,
                flush=False,
            )
            for job in _fleet_jobs(n_lanes)
        ]
        runs = farm.run(jobs)
        assert len(runs) == n_lanes
    return time.perf_counter() - started


def _best(fn, *args):
    results = [fn(*args) for _ in range(REPS)]
    if isinstance(results[0], tuple):
        digests = {tuple(r[1]) for r in results}
        assert len(digests) == 1, "nondeterministic sifted streams"
        return min(r[0] for r in results), results[0][1]
    return min(results)


def test_e17_lane_throughput(benchmark, table):
    def experiment():
        rows = []
        for n_lanes in LANE_SWEEP:
            jobs = _fleet_jobs(n_lanes)
            lane_s, lane_digests = _best(_run_lane_fleet, jobs)
            inline_s, inline_digests = _run_inline_fleet(jobs)
            assert lane_digests == inline_digests, (
                f"lane engine diverged from sequential execution at {n_lanes} lanes"
            )
            farm_s = _best(_run_farm_epochs, n_lanes)
            rows.append(
                {
                    "n_lanes": n_lanes,
                    "lane_s": lane_s,
                    "inline_s": inline_s,
                    "farm_s": farm_s,
                    "total_slots": n_lanes * EPOCHS * EPOCH_SLOTS,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)

    def rate(row, key):
        return row["total_slots"] / row[key] if row[key] else float("inf")

    table(
        f"E17: persistent lane fleet vs per-epoch process farm "
        f"({EPOCHS} epochs x {EPOCH_SLOTS} slots, workers={WORKERS}, "
        "sifted streams byte-identical to inline)",
        ["lanes", "lane s", "farm s", "inline s", "lane slots/s", "farm slots/s", "speedup"],
        [
            [
                row["n_lanes"],
                f"{row['lane_s']:.3f}",
                f"{row['farm_s']:.3f}",
                f"{row['inline_s']:.3f}",
                f"{rate(row, 'lane_s') / 1e6:.2f}M",
                f"{rate(row, 'farm_s') / 1e6:.2f}M",
                f"{row['farm_s'] / row['lane_s']:.2f}x",
            ]
            for row in rows
        ],
    )

    # Throughput gate at the 64-lane sweep point ("0" disables).
    if os.environ.get("BENCH_E17_REQUIRE_SPEEDUP") != "0":
        gate = next(row for row in rows if row["n_lanes"] == GATE_LANES)
        speedup = gate["farm_s"] / gate["lane_s"]
        assert speedup >= MIN_SPEEDUP, (
            f"lane engine speedup {speedup:.2f}x at {gate['n_lanes']} lanes "
            f"is below the {MIN_SPEEDUP}x gate vs the per-epoch process farm"
        )
