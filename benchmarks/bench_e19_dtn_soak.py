"""E19 (disruption tolerance) — custody-transfer soak under a flapping mesh.

The DTN regime: a two-endpoint relay mesh whose single gateway pair
loses its only access link on a repeating flap cycle (down most of every
period), operated for a simulated hour by :mod:`repro.kms` with custody
transfer enabled (:mod:`repro.dtn`).  Deliveries that would starve are
parked as custody bundles at the furthest reachable custodian and handed
on when the link heals.

The table compares three regimes: the no-custody baseline (which starves
— failed transports, nothing parked), scheduled forwarding (single copy,
earliest-arrival routing) and epidemic flooding (replicate on every open
contact, duplicate-suppressed).  Reported per run: failed/parked
transports, custody submitted/delivered and the delivery ratio, exact
terminal accounting (expired/evicted), custody occupancy peak, custody
delivery latency p50/p99, pad consumed by custody hops and copies made —
the last two are the scheduled-vs-epidemic overhead the policies trade.

Always asserted: the baseline really starves while both custody runs
complete every transport; custody accounting is exact (submitted =
delivered + expired + evicted + live); the scheduled run replayed on the
same seed reproduces the delivered-key digest bit-for-bit.

Knobs for CI smoke runs: ``BENCH_E19_HOURS`` (simulated hours, default 1),
``BENCH_E19_EPOCH_SECONDS``, ``BENCH_E19_FLAP_PERIOD_SECONDS`` /
``BENCH_E19_FLAP_OUTAGE_SECONDS`` (the cut/restore cycle),
``BENCH_E19_TTL_SECONDS`` and ``BENCH_E19_CAPACITY_BITS`` (custody
limits).  With ``BENCH_JSON_DIR`` set the table lands in
``BENCH_bench_e19_dtn_soak.json`` for the nightly perf trajectory.
"""

import time

from benchmarks.conftest import float_env, int_env, run_once
from repro.kms import KeyManagementService, KmsConfig, ReplenishmentConfig
from repro.network.relay import TrustedRelayNetwork
from repro.util.rng import DeterministicRNG

HOURS = float_env("BENCH_E19_HOURS", 1.0, minimum=0.1)
# Three relays give epidemic flooding a side branch to replicate into, so
# its overhead over single-copy scheduled forwarding is visible.
N_RELAYS = int_env("BENCH_E19_RELAYS", 3, minimum=2)
EPOCH_SECONDS = float_env("BENCH_E19_EPOCH_SECONDS", 120.0, minimum=1.0)
FLAP_PERIOD = float_env("BENCH_E19_FLAP_PERIOD_SECONDS", 900.0, minimum=10.0)
FLAP_OUTAGE = float_env("BENCH_E19_FLAP_OUTAGE_SECONDS", 600.0, minimum=1.0)
TTL_SECONDS = float_env("BENCH_E19_TTL_SECONDS", 4000.0, minimum=1.0)
CAPACITY_BITS = int_env("BENCH_E19_CAPACITY_BITS", 1 << 20, minimum=1024)


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def _soak(custody, policy="scheduled"):
    """One KMS soak: endpoint-1's only access link flaps all run long."""
    relays = TrustedRelayNetwork.for_mesh(
        n_endpoints=2, n_relays=N_RELAYS, rng=DeterministicRNG(11), prefill_seconds=30.0
    )
    config = KmsConfig(
        gateway_pairs=(("endpoint-0", "endpoint-1"),),
        custody=custody,
        custody_ttl_seconds=TTL_SECONDS,
        custody_capacity_bits=CAPACITY_BITS,
        custody_policy=policy,
        replenishment=ReplenishmentConfig(epoch_seconds=EPOCH_SECONDS, workers=1),
    )
    service = KeyManagementService(relays, config, rng=DeterministicRNG(7))
    horizon = HOURS * 3600.0
    at = 100.0
    while at < horizon:
        service.schedule_link_cut(at, "endpoint-1", "relay-1")
        if at + FLAP_OUTAGE < horizon:
            service.schedule_link_restore(at + FLAP_OUTAGE, "endpoint-1", "relay-1")
        at += FLAP_PERIOD
    started = time.perf_counter()
    report = service.serve(hours=HOURS)
    wall = time.perf_counter() - started
    return report, service, wall


def test_e19_dtn_soak(benchmark, table):
    def experiment():
        return {
            "no-custody": _soak(custody=False),
            "scheduled": _soak(custody=True, policy="scheduled"),
            "epidemic": _soak(custody=True, policy="epidemic"),
            "scheduled@replay": _soak(custody=True, policy="scheduled"),
        }

    results = run_once(benchmark, experiment)

    rows = []
    for name, (report, service, wall) in results.items():
        if service.custody is None:
            custody_cols = ["-"] * 9
        else:
            metrics = service.custody.metrics
            latencies = service.custody.delivered_latencies
            ratio = report.custody_delivered / max(report.custody_submitted, 1)
            custody_cols = [
                report.custody_submitted,
                report.custody_delivered,
                f"{ratio:.2f}",
                report.custody_expired + report.custody_evicted,
                report.custody_occupancy_peak_bits,
                f"{_percentile(latencies, 50):.0f}",
                f"{_percentile(latencies, 99):.0f}",
                metrics.pad_bits_consumed,
                metrics.copies_made + metrics.copy_moves,
            ]
        rows.append(
            [name, report.transports_failed, report.transports_parked]
            + custody_cols
            + [f"{wall:.2f}"]
        )
    table(
        f"E19: {HOURS:g}h DTN soak, 2+{N_RELAYS} mesh, access link down "
        f"{FLAP_OUTAGE:g}s of every {FLAP_PERIOD:g}s",
        [
            "regime",
            "failed",
            "parked",
            "subm",
            "deliv",
            "ratio",
            "exp+evict",
            "peak bits",
            "lat p50 s",
            "lat p99 s",
            "pad bits",
            "copies",
            "wall s",
        ],
        rows,
    )

    baseline, _, _ = results["no-custody"]
    # The baseline really starves: without custody the partition surfaces
    # as failed transports and nothing is parked.
    assert baseline.transports_failed > 0, "flap schedule never starved the baseline"
    assert baseline.transports_parked == 0

    scheduled, scheduled_service, _ = results["scheduled"]
    replay, _, _ = results["scheduled@replay"]
    # Determinism contract: same seed, same flap plan => bit-identical
    # delivered key material, on both the live and the custody path.
    assert scheduled.delivered_digest == replay.delivered_digest
    assert scheduled.custody_delivered_digest == replay.custody_delivered_digest

    for name in ("scheduled", "epidemic"):
        report, service, _ = results[name]
        # Custody converts starvation into parked-then-delivered bundles.
        assert report.transports_failed == 0, f"{name}: custody still starved"
        assert report.transports_parked > 0, f"{name}: nothing was ever parked"
        assert report.custody_delivered > 0, f"{name}: no parked key ever arrived"
        assert report.custody_occupancy_peak_bits > 0
        # Exact terminal accounting, on both the demand and custody ledgers.
        assert report.completion_accounted, f"{name}: demands unaccounted"
        assert report.custody_accounted, f"{name}: custody bundles unaccounted"
        assert service.custody.reconciled, f"{name}: store/metrics ledgers disagree"
        latencies = service.custody.delivered_latencies
        assert _percentile(latencies, 50) <= _percentile(latencies, 99)

    # Flooding can never make fewer copies than single-copy forwarding
    # moved; the table's pad/copies columns quantify the actual overhead.
    epidemic_metrics = results["epidemic"][1].custody.metrics
    scheduled_metrics = scheduled_service.custody.metrics
    assert (
        epidemic_metrics.copies_made + epidemic_metrics.copy_moves > 0
        and scheduled_metrics.copy_moves + scheduled_metrics.copies_made > 0
    )
