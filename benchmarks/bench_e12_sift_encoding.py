"""E12 — Run-length encoding of sift messages (section 5 / Appendix).

Paper claim: sift messages are encoded "efficiently so that runs of identical
values (and in particular of 'no detection' values) are compressed to take
very little space".  Detections are rare (one slot in a few hundred at the
operating point), so the run-length encoded indication is dramatically
smaller than a naive explicit-index listing, and the advantage grows as the
link gets lossier (detections get rarer).

Since PR 4 the engine carries the run-length encoding in a binary wire format
(varint runs + bit-packed bases, :mod:`repro.core.wire`), with the original
JSON encoding retained as the reference; this benchmark therefore compares
**three** encodings — naive explicit indices, JSON-RLE, binary-RLE — so the
paper's compression claim is quantified against the deployed wire format.
"""

from benchmarks.conftest import run_once
from repro.core.sifting import SiftingProtocol
from repro.optics.channel import ChannelParameters, QuantumChannel
from repro.util.rng import DeterministicRNG

DISTANCES_KM = [10, 30, 50]
SLOTS = 1_000_000


def test_e12_rle_vs_naive_sift_messages(benchmark, table):
    def experiment():
        rows = []
        for distance in DISTANCES_KM:
            channel = QuantumChannel(ChannelParameters.for_distance(distance), DeterministicRNG(61))
            frame = channel.transmit(SLOTS)
            protocol = SiftingProtocol()
            rle = protocol.build_sift_message(frame)
            naive = protocol.build_naive_sift_message(frame)
            rows.append(
                {
                    "distance": distance,
                    "detections": len(naive.detected_slots),
                    "rle_bytes": rle.size_bytes,
                    "json_rle_bytes": len(rle.encode_json()),
                    "bitmap_bytes": rle.uncompressed_bitmap_bytes,
                    "index_bytes": naive.size_bytes,
                    "ratio": rle.uncompressed_bitmap_bytes / rle.size_bytes,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    table(
        f"E12: sift message size for {SLOTS:,} slots — naive indices vs JSON-RLE vs binary-RLE",
        ["km", "detections", "per-slot bitmap bytes", "naive index bytes", "JSON-RLE bytes", "binary-RLE bytes", "bitmap / binary"],
        [
            [
                r["distance"],
                r["detections"],
                r["bitmap_bytes"],
                r["index_bytes"],
                r["json_rle_bytes"],
                r["rle_bytes"],
                f"{r['ratio']:.1f}x",
            ]
            for r in rows
        ],
    )
    # The run-length encoding beats the uncompressed per-slot indication by a
    # large factor, and the advantage grows as detections get rarer (longer
    # 'no detection' runs), exactly as the paper intends.
    assert all(r["ratio"] > 3.0 for r in rows)
    ratios = [r["ratio"] for r in rows]
    assert ratios == sorted(ratios)
    # The encodings strictly improve: binary-RLE < JSON-RLE < explicit indices.
    assert all(r["rle_bytes"] < r["json_rle_bytes"] for r in rows)
    assert all(r["json_rle_bytes"] <= r["index_bytes"] for r in rows)
    # The binary wire format is a solid multiple tighter than the JSON
    # reference carrying the same runs (varints + bit-packed bases vs decimal
    # digit lists; ~2.8x across the distance sweep on the reference run).
    assert all(r["json_rle_bytes"] / r["rle_bytes"] > 2.0 for r in rows)


def test_e12_rle_scales_with_detections_not_slots(benchmark, table):
    """Message size tracks the number of detections, not the number of slots."""

    def experiment():
        channel = QuantumChannel(ChannelParameters.paper_operating_point(), DeterministicRNG(62))
        rows = []
        for slots in (100_000, 400_000, 1_600_000):
            frame = channel.transmit(slots)
            message = SiftingProtocol().build_sift_message(frame)
            detections = int(frame.n_detected)
            rows.append((slots, detections, message.size_bytes, message.size_bytes / max(detections, 1)))
        return rows

    rows = run_once(benchmark, experiment)
    table(
        "E12: RLE sift message size vs batch size at the operating point",
        ["slots", "detections", "RLE bytes", "bytes per detection"],
        [[s, d, b, f"{bpd:.1f}"] for s, d, b, bpd in rows],
    )
    bytes_per_detection = [bpd for _, _, _, bpd in rows]
    # Per-detection cost stays roughly constant while the slot count grows 16x.
    assert max(bytes_per_detection) < 2.5 * min(bytes_per_detection)
