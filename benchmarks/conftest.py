"""Shared helpers for the benchmark/experiment harness.

Each ``bench_eNN_*.py`` file regenerates one of the paper's quantitative
results (see DESIGN.md section 4 and EXPERIMENTS.md).  The benchmarks print
the same rows/series the paper reports and assert the qualitative *shape*
(who wins, trends, crossovers); absolute values depend on hardware constants
the paper does not fully specify and are recorded in EXPERIMENTS.md instead.

Run with:  pytest benchmarks/ --benchmark-only
"""

import sys

import pytest


def emit(title, headers, rows):
    """Print a small aligned table so the benchmark output reads like the paper."""
    print(f"\n=== {title} ===", file=sys.stderr)
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    header_line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(header_line, file=sys.stderr)
    print("-" * len(header_line), file=sys.stderr)
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)), file=sys.stderr)


@pytest.fixture
def table():
    """Fixture exposing the table printer to benchmark functions."""
    return emit


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
