"""Shared helpers for the benchmark/experiment harness.

Each ``bench_eNN_*.py`` file regenerates one of the paper's quantitative
results (see DESIGN.md section 4 and EXPERIMENTS.md).  The benchmarks print
the same rows/series the paper reports and assert the qualitative *shape*
(who wins, trends, crossovers); absolute values depend on hardware constants
the paper does not fully specify and are recorded in EXPERIMENTS.md instead.

Run with:  pytest benchmarks/ --benchmark-only

Machine-readable output
-----------------------

Set ``BENCH_JSON_DIR=<directory>`` to additionally write every table a
benchmark prints to ``BENCH_<module>.json`` in that directory (one file per
benchmark module, a list of ``{test, title, headers, rows}`` objects,
appended across tests in the same run).  CI and the perf-trajectory tooling
diff these files across PRs; the before/after numbers quoted in a PR should
come from here rather than from eyeballing the stderr tables.
"""

import json
import os
import sys

import pytest


def _knob_error(name, raw, expected):
    """A malformed BENCH_* knob fails loudly at collection, naming the knob.

    Without this, a typo like ``BENCH_E15_HOURS=2h`` surfaces as a bare
    ``ValueError`` traceback from deep inside a benchmark run, with nothing
    pointing at the environment variable that caused it.
    """
    return pytest.UsageError(
        f"Malformed benchmark knob {name}={raw!r}: expected {expected}. "
        f"Unset it or give it a valid value."
    )


def int_env(name, default, minimum=None):
    """Read an integer BENCH_* knob with a clear error on malformed input."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise _knob_error(name, raw, "an integer") from None
    if minimum is not None and value < minimum:
        raise _knob_error(name, raw, f"an integer >= {minimum}")
    return value


def float_env(name, default, minimum=None):
    """Read a float BENCH_* knob with a clear error on malformed input."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        raise _knob_error(name, raw, "a number") from None
    if minimum is not None and value < minimum:
        raise _knob_error(name, raw, f"a number >= {minimum}")
    return value


def choice_env(name, default, choices):
    """Read an enumerated BENCH_* knob with a clear error on bad values."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    if raw not in choices:
        raise _knob_error(name, raw, f"one of {tuple(choices)}")
    return raw


def emit(title, headers, rows):
    """Print a small aligned table so the benchmark output reads like the paper."""
    print(f"\n=== {title} ===", file=sys.stderr)
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    header_line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(header_line, file=sys.stderr)
    print("-" * len(header_line), file=sys.stderr)
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)), file=sys.stderr)


#: Files already written by this pytest run; the first table for a module in
#: a run truncates any file left over from a previous run, so entries only
#: accumulate within one session and the trajectory tooling never sees stale
#: rows.
_JSON_FILES_THIS_RUN = set()


def _record_json(module_name, test_name, title, headers, rows):
    """Append one table to ``BENCH_<module>.json`` if BENCH_JSON_DIR is set."""
    out_dir = os.environ.get("BENCH_JSON_DIR")
    if not out_dir:
        return
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{module_name}.json")
    entries = []
    if path in _JSON_FILES_THIS_RUN:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entries = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            entries = []
    _JSON_FILES_THIS_RUN.add(path)
    entries.append(
        {
            "test": test_name,
            "title": title,
            "headers": list(headers),
            "rows": [[_plain(cell) for cell in row] for row in rows],
        }
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entries, handle, indent=1)
        handle.write("\n")


def _plain(cell):
    """Coerce a table cell to a JSON-native type (numbers stay numbers)."""
    if isinstance(cell, (int, float, str, bool)) or cell is None:
        return cell
    return str(cell)


@pytest.fixture
def table(request):
    """Fixture exposing the table printer to benchmark functions.

    Prints to stderr always; mirrors the table into ``BENCH_<module>.json``
    when ``BENCH_JSON_DIR`` is set (see module docstring).
    """
    module_name = request.node.module.__name__.rpartition(".")[2]

    def _table(title, headers, rows):
        emit(title, headers, rows)
        _record_json(module_name, request.node.name, title, headers, rows)

    return _table


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
