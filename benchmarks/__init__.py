"""Benchmark/experiment harness: one module per reproduced table or figure.

See DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for the
paper-versus-measured record.  Run with::

    pytest benchmarks/ --benchmark-only
"""
