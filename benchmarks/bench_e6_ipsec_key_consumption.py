"""E6 — IPsec key consumption: AES rapid-reseed vs one-time pad (section 7).

The paper's two IPsec extensions consume QKD bits at wildly different rates:
the rapid-reseed extension draws one Qblock (1024 bits) per SA rollover
("about once a minute"), while the one-time-pad extension consumes key at the
full traffic rate.  This is the concrete form of section 2's "race between
the rate at which keying material is put into place and the rate at which it
is consumed": a ~100-400 bits/s QKD link comfortably feeds AES reseeding but
can only cover a few hundred bits/s of one-time-pad traffic.

The benchmark drives both tunnel types over an hour of simulated time with a
fixed traffic load and reports QKD bits consumed, rollovers, and whether the
link's distilled-key budget keeps up.
"""

from benchmarks.conftest import run_once
from repro.core.keypool import KeyPool
from repro.ipsec import CipherSuite, GatewayPair, IPPacket, SecurityPolicy
from repro.ipsec.ike import NegotiationError
from repro.sim.clock import SimClock
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG

SIMULATED_MINUTES = 30
PACKETS_PER_MINUTE = 6
PACKET_BYTES = 512
LINK_DISTILLED_RATE_BPS = 300.0  # representative distilled rate of the 10 km link


def _run_tunnel(cipher_suite, qkd_bits_per_rekey):
    shared = BitString.random(2_000_000, DeterministicRNG(21))
    alice_pool, bob_pool = KeyPool(name="alice"), KeyPool(name="bob")
    alice_pool.add_bits(shared)
    bob_pool.add_bits(shared)
    clock = SimClock()
    pair = GatewayPair(alice_pool, bob_pool, clock, DeterministicRNG(22))
    pair.add_symmetric_policy(
        SecurityPolicy(
            name="tunnel",
            source_network="10.1.0.0/16",
            destination_network="10.2.0.0/16",
            cipher_suite=cipher_suite,
            lifetime_seconds=60.0,
            qkd_bits_per_rekey=qkd_bits_per_rekey,
        )
    )
    pair.establish()

    delivered = 0
    failures = 0
    for _minute in range(SIMULATED_MINUTES):
        for _packet in range(PACKETS_PER_MINUTE):
            packet = IPPacket("10.1.0.1", "10.2.0.1", bytes(PACKET_BYTES))
            try:
                if pair.transmit(packet) is not None:
                    delivered += 1
            except NegotiationError:
                failures += 1
        clock.advance(60.0)

    consumed = pair.alice.ike.qkd_bits_consumed
    return {
        "delivered": delivered,
        "failures": failures,
        "qkd_bits_consumed": consumed,
        "bits_per_second": consumed / (SIMULATED_MINUTES * 60.0),
        "negotiations": pair.alice.statistics.negotiations,
        "traffic_bits": delivered * PACKET_BYTES * 8,
    }


def test_e6_aes_reseed_vs_one_time_pad(benchmark, table):
    def experiment():
        aes = _run_tunnel(CipherSuite.AES_QKD_RESEED, qkd_bits_per_rekey=1024)
        # The OTP tunnel must negotiate enough pad per rollover to cover a
        # minute of traffic in both directions (plus encapsulation overhead).
        per_minute_bits = PACKETS_PER_MINUTE * (PACKET_BYTES + 96) * 8 * 2
        otp = _run_tunnel(CipherSuite.ONE_TIME_PAD, qkd_bits_per_rekey=per_minute_bits)
        return aes, otp

    aes, otp = run_once(benchmark, experiment)
    table(
        f"E6: QKD key consumption over {SIMULATED_MINUTES} minutes of VPN traffic",
        ["tunnel", "packets", "rekeys", "QKD bits used", "QKD bits/s", "traffic bits"],
        [
            [
                "AES rapid-reseed",
                aes["delivered"],
                aes["negotiations"],
                aes["qkd_bits_consumed"],
                f"{aes['bits_per_second']:.1f}",
                aes["traffic_bits"],
            ],
            [
                "one-time pad",
                otp["delivered"],
                otp["negotiations"],
                otp["qkd_bits_consumed"],
                f"{otp['bits_per_second']:.1f}",
                otp["traffic_bits"],
            ],
        ],
    )

    # Both tunnels delivered all their traffic from a full key store.
    assert aes["failures"] == 0 and otp["failures"] == 0
    assert aes["delivered"] == otp["delivered"] == SIMULATED_MINUTES * PACKETS_PER_MINUTE
    # Shape: OTP consumes far more key than AES reseeding for the same traffic.
    assert otp["qkd_bits_consumed"] > 5 * aes["qkd_bits_consumed"]
    # The AES-reseed tunnel fits comfortably within the link's distilled rate;
    # the OTP tunnel needs key at a rate comparable to (or above) the traffic rate.
    assert aes["bits_per_second"] < LINK_DISTILLED_RATE_BPS
    assert otp["bits_per_second"] > aes["bits_per_second"]


def test_e6_rollover_cadence(benchmark, table):
    """Keys roll over 'about once a minute': one negotiation per minute of traffic."""

    def experiment():
        return _run_tunnel(CipherSuite.AES_QKD_RESEED, qkd_bits_per_rekey=1024)

    outcome = run_once(benchmark, experiment)
    table(
        "E6: SA rollover cadence (60 s lifetime)",
        ["simulated minutes", "negotiations", "Qblocks consumed"],
        [[SIMULATED_MINUTES, outcome["negotiations"], outcome["qkd_bits_consumed"] // 1024]],
    )
    # One negotiation per minute (plus/minus the initial one).
    assert SIMULATED_MINUTES - 1 <= outcome["negotiations"] <= SIMULATED_MINUTES + 1
