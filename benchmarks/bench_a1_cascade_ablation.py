"""A1 (ablation) — design choices inside the Cascade variant.

DESIGN.md calls out two design choices in the error-correction stage that the
paper motivates but does not quantify:

* the adaptive contiguous-block first pass (the "subranges") in front of the
  LFSR-seeded random-subset rounds — without it every error must be located by
  bisecting a ~n/2-sized random subset, which costs ~log2(n) disclosed
  parities per error;
* the number of pseudo-random subsets announced per round (the paper uses 64).

This ablation measures the disclosure cost of each choice at the link's
operating error rate, so the numbers behind the default configuration are on
record.
"""

from benchmarks.conftest import run_once
from repro.core.cascade import CascadeParameters, CascadeProtocol
from repro.mathkit.entropy import binary_entropy
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG

BLOCK_BITS = 2048
ERROR_RATE = 0.065


def _noisy_pair(seed):
    rng = DeterministicRNG(seed)
    reference = BitString.random(BLOCK_BITS, rng)
    errors = rng.sample(range(BLOCK_BITS), int(round(ERROR_RATE * BLOCK_BITS)))
    noisy = reference.to_list()
    for index in errors:
        noisy[index] ^= 1
    return reference, BitString(noisy)


def _run(parameters, seed=91):
    reference, noisy = _noisy_pair(seed)
    protocol = CascadeProtocol(parameters, DeterministicRNG(seed + 1))
    return protocol.reconcile(reference, noisy, error_rate_hint=ERROR_RATE)


def test_a1_block_first_pass_ablation(benchmark, table):
    def experiment():
        with_blocks = _run(CascadeParameters(block_first_pass=True))
        without_blocks = _run(CascadeParameters(block_first_pass=False, rounds=8))
        return with_blocks, without_blocks

    with_blocks, without_blocks = run_once(benchmark, experiment)
    shannon = BLOCK_BITS * binary_entropy(ERROR_RATE)
    table(
        f"A1: block first pass on/off (2048-bit block, {ERROR_RATE:.1%} errors, Shannon = {shannon:.0f} bits)",
        ["configuration", "corrected", "parities disclosed", "x Shannon", "bisections"],
        [
            [
                "block pass + subset rounds (default)",
                with_blocks.matches_reference,
                with_blocks.disclosed_parities,
                f"{with_blocks.disclosed_parities / shannon:.2f}",
                with_blocks.bisection_queries,
            ],
            [
                "subset rounds only",
                without_blocks.matches_reference,
                without_blocks.disclosed_parities,
                f"{without_blocks.disclosed_parities / shannon:.2f}",
                without_blocks.bisection_queries,
            ],
        ],
    )
    # Both configurations correct the block; the block first pass is what keeps
    # the disclosure near the Shannon limit.
    assert with_blocks.matches_reference and without_blocks.matches_reference
    assert with_blocks.disclosed_parities < without_blocks.disclosed_parities
    assert with_blocks.disclosed_parities < 2.0 * shannon


def test_a1_subsets_per_round_ablation(benchmark, table):
    def experiment():
        rows = []
        for subsets in (16, 32, 64, 128):
            result = _run(CascadeParameters(subsets_per_round=subsets), seed=92)
            rows.append((subsets, result))
        return rows

    rows = run_once(benchmark, experiment)
    table(
        "A1: subsets announced per round (paper default: 64)",
        ["subsets/round", "corrected", "parities disclosed", "rounds used"],
        [
            [subsets, result.matches_reference, result.disclosed_parities, result.rounds_used]
            for subsets, result in rows
        ],
    )
    # Correctness never depends on the subset count (the block pass plus the
    # cascade of parity updates finds the errors either way) ...
    assert all(result.matches_reference for _, result in rows)
    # ... but announcing more subsets per round costs more disclosed parities.
    disclosed = [result.disclosed_parities for _, result in rows]
    assert disclosed[0] < disclosed[-1]
