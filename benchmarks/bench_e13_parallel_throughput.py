"""E13 (scale-out) — parallel multi-block distillation throughput.

The ROADMAP's north star is throughput ("as fast as the hardware allows");
PR 2 made one block cheap, this experiment measures making *many* blocks
concurrent.  A ≥16-block workload is distilled through the parallel runtime
(:mod:`repro.runtime`) at 1, 2 and 4 workers; the table reports wall-clock,
blocks/s and speedup versus one worker, and the test asserts the runtime's
two contracts:

* **determinism** — the distilled pool digest is identical at every worker
  count (always asserted);
* **speedup** — ≥2x at 4 workers, asserted when the host actually has ≥4
  CPUs (on fewer cores the speedup is physically unavailable and the run
  only records the numbers).  ``BENCH_E13_REQUIRE_SPEEDUP=1`` forces the
  assertion regardless of CPU count; ``=0`` disables it (what the CI smoke
  job does — shared 4-vCPU runners with a reduced workload are too noisy
  to gate a merge on a wall-clock ratio).

``BENCH_E13_BLOCKS`` / ``BENCH_E13_BLOCK_BITS`` shrink the workload for CI
smoke runs, and ``BENCH_E13_BACKEND`` selects the pool backend.  With
``BENCH_JSON_DIR`` set the table lands in ``BENCH_bench_e13_parallel_throughput.json``
— the seed of the parallel-throughput perf trajectory.
"""

import hashlib
import os
import time

from benchmarks.conftest import choice_env, int_env, run_once
from repro.core.engine import EngineParameters, QKDProtocolEngine, SiftedBlock
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG

BLOCK_BITS = int_env("BENCH_E13_BLOCK_BITS", 2048, minimum=1)
N_BLOCKS = int_env("BENCH_E13_BLOCKS", 16, minimum=2)
BACKEND = choice_env("BENCH_E13_BACKEND", "process", ("process", "thread"))
WORKER_COUNTS = (1, 2, 4)
ERROR_RATE = 0.06


def _workload():
    blocks = []
    for seed in range(N_BLOCKS):
        rng = DeterministicRNG(100 + seed)
        reference = BitString.random(BLOCK_BITS, rng)
        noisy = reference.to_list()
        for index in rng.sample(range(BLOCK_BITS), int(round(ERROR_RATE * BLOCK_BITS))):
            noisy[index] ^= 1
        blocks.append(
            SiftedBlock(reference, BitString(noisy), transmitted_pulses=500_000)
        )
    return blocks


def _distill(blocks, workers):
    engine = QKDProtocolEngine(
        EngineParameters(parallel_workers=workers, parallel_backend=BACKEND),
        DeterministicRNG(7),
    )
    started = time.perf_counter()
    engine.distill_blocks(blocks)
    elapsed = time.perf_counter() - started
    digest = hashlib.sha256()
    for block in engine.alice_pool.blocks:
        digest.update(str(block.bits).encode())
    return {
        "workers": workers,
        "seconds": elapsed,
        "digest": digest.hexdigest(),
        "distilled_bits": engine.statistics.distilled_bits,
        "keys_match": engine.keys_match,
    }


def test_e13_parallel_throughput(benchmark, table):
    assert N_BLOCKS >= 2, "the workload must contain at least two blocks"
    blocks = _workload()

    def experiment():
        return [_distill(blocks, workers) for workers in WORKER_COUNTS]

    runs = run_once(benchmark, experiment)
    baseline = runs[0]["seconds"]

    cpus = os.cpu_count() or 1
    rows = []
    for run in runs:
        speedup = baseline / run["seconds"] if run["seconds"] else float("inf")
        rows.append(
            [
                run["workers"],
                BACKEND,
                f"{run['seconds']:.3f}",
                f"{N_BLOCKS / run['seconds']:.1f}",
                f"{speedup:.2f}x",
                run["distilled_bits"],
                run["digest"][:12],
            ]
        )
    table(
        f"E13: parallel distillation of {N_BLOCKS} x {BLOCK_BITS}-bit blocks "
        f"({cpus} CPU(s) available)",
        ["workers", "backend", "seconds", "blocks/s", "speedup", "distilled bits", "pool digest"],
        rows,
    )

    # Determinism contract: bit-identical output at every worker count.
    digests = {run["digest"] for run in runs}
    assert len(digests) == 1, f"worker count changed the key material: {digests}"
    assert all(run["keys_match"] for run in runs)
    assert runs[0]["distilled_bits"] > 0, "workload too small to distill key"

    # Throughput contract: >=2x at 4 workers -- only enforceable where 4
    # cores exist for the workers to run on ("1" forces, "0" disables).
    four_worker = next(run for run in runs if run["workers"] == 4)
    speedup_at_4 = baseline / four_worker["seconds"]
    require = os.environ.get("BENCH_E13_REQUIRE_SPEEDUP")
    if require == "1" or (require != "0" and cpus >= 4):
        assert speedup_at_4 >= 2.0, (
            f"expected >=2x speedup at 4 workers on {cpus} CPUs, "
            f"got {speedup_at_4:.2f}x"
        )
