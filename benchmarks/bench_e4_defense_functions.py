"""E4 — Defense functions and resultant entropy (section 6 and the Appendix).

The Appendix tabulates two estimates of Eve's knowledge from error-inducing
attacks (Bennett et al., Slutsky et al.) and the resultant-entropy formula
``b - d - r - t - m - c*sigma`` that sets the privacy-amplification output.
This benchmark regenerates that table as a sweep over the observed QBER: the
defense estimates, the multi-photon (transparent) charge, and the distillable
fraction for both defense functions, including the 5-sigma confidence margin.
"""

from benchmarks.conftest import run_once
from repro.core.entropy_estimation import (
    BennettDefense,
    EntropyEstimator,
    EntropyInputs,
    SlutskyDefense,
)
from repro.mathkit.entropy import binary_entropy

BLOCK_BITS = 4096
QBERS = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.10, 0.12]


def _inputs(qber):
    disclosed = int(1.35 * binary_entropy(qber) * BLOCK_BITS) + 150
    return EntropyInputs(
        sifted_bits=BLOCK_BITS,
        error_bits=int(round(qber * BLOCK_BITS)),
        transmitted_pulses=BLOCK_BITS * 300,
        disclosed_parities=disclosed,
        mean_photon_number=0.1,
    )


def test_e4_defense_function_sweep(benchmark, table):
    def experiment():
        bennett = EntropyEstimator(defense=BennettDefense(), confidence_sigmas=5.0)
        slutsky = EntropyEstimator(defense=SlutskyDefense(), confidence_sigmas=5.0)
        rows = []
        for qber in QBERS:
            inputs = _inputs(qber)
            estimate_b = bennett.estimate(inputs)
            estimate_s = slutsky.estimate(inputs)
            rows.append((qber, inputs.disclosed_parities, estimate_b, estimate_s))
        return rows

    rows = run_once(benchmark, experiment)
    table(
        "E4: resultant entropy per 4096-bit block (Bennett vs Slutsky, c = 5)",
        ["QBER", "d", "t_Bennett", "t_Slutsky", "multi-photon", "distill(B)", "distill(S)"],
        [
            [
                f"{qber:.0%}",
                disclosed,
                f"{eb.defense.information_bits:.0f}",
                f"{es.defense.information_bits:.0f}",
                f"{eb.transparent.information_bits:.0f}",
                eb.distillable_bits,
                es.distillable_bits,
            ]
            for qber, disclosed, eb, es in rows
        ],
    )

    bennett_keys = [eb.distillable_bits for _, _, eb, _ in rows]
    slutsky_keys = [es.distillable_bits for _, _, _, es in rows]
    # Shape: distillable key falls monotonically with QBER for both defenses.
    assert all(a >= b for a, b in zip(bennett_keys, bennett_keys[1:]))
    assert all(a >= b for a, b in zip(slutsky_keys, slutsky_keys[1:]))
    # Slutsky is at least as conservative as Bennett everywhere on the sweep.
    assert all(s <= b for b, s in zip(bennett_keys, slutsky_keys))
    # At the paper's 6-8% operating band, Bennett still distills key.
    operating = [eb.distillable_bits for qber, _, eb, _ in rows if 0.06 <= qber <= 0.08]
    assert all(k > 0 for k in operating)
    # Slutsky reaches zero no later than 12%.
    assert slutsky_keys[-1] == 0


def test_e4_confidence_parameter(benchmark, table):
    """The paper: 'a parameter c = 5 mean 5 standard deviations, or about 10-6
    chance of successful eavesdropping'."""

    def experiment():
        inputs = _inputs(0.065)
        rows = []
        for c in (0.0, 1.0, 3.0, 5.0, 7.0):
            estimate = EntropyEstimator(defense=BennettDefense(), confidence_sigmas=c).estimate(inputs)
            rows.append((c, estimate.distillable_bits, estimate.eavesdropping_success_probability))
        return rows

    rows = run_once(benchmark, experiment)
    table(
        "E4: effect of the confidence parameter c at 6.5% QBER",
        ["c (sigmas)", "distillable bits", "P(successful eavesdropping)"],
        [[f"{c:.0f}", bits, f"{p:.1e}"] for c, bits, p in rows],
    )
    keys = [bits for _, bits, _ in rows]
    assert all(a >= b for a, b in zip(keys, keys[1:]))
    c5 = next(p for c, _, p in rows if c == 5.0)
    assert c5 < 1e-5
