"""E14 (hot path) — end-to-end slot throughput of the default link.

The slot→key path is the system's inner loop: optics Monte-Carlo, the
sift/sift-response transaction, Cascade, entropy estimation, privacy
amplification and Wegman-Carter authentication of the binary transcript.
PR 4 vectorized the announcement path (numpy run-length encoding, the binary
wire codec of :mod:`repro.core.wire`, array-native sift internals) and fused
the optics sampling passes; this benchmark is the regression gate for that
work: it sweeps batch sizes with and without an eavesdropper attached and
reports **slots per second** end to end.

Assertions:

* **determinism** (always) — two runs from the same seed produce the same
  sifted stream and bit-identical distilled pool digests;
* **throughput** — slots/s on the clean default-link run must be at least
  ``BENCH_E14_MIN_SPEEDUP`` (default 2.5) times the pre-PR 4 baseline of
  ~2.85M slots/s recorded on the reference container.  The *measured*
  speedup there is 3.1-3.3x (printed in the table's last column); the gate
  default sits below it so scheduler noise on a busy 1-CPU host cannot flake
  a regression guard.  ``BENCH_E14_BASELINE_SLOTS_PER_SEC`` rebaselines for
  other hardware; ``BENCH_E14_REQUIRE_SPEEDUP=0`` disables the gate (what
  the CI smoke job on shared runners does).

``BENCH_E14_SLOTS`` caps the largest batch for smoke runs.  With
``BENCH_JSON_DIR`` set the table lands in
``BENCH_bench_e14_slot_throughput.json`` for the perf-trajectory tooling.
"""

import hashlib
import os
import time

from benchmarks.conftest import float_env, int_env, run_once
from repro.eve.intercept_resend import InterceptResendAttack
from repro.link.qkd_link import LinkParameters, QKDLink
from repro.util.rng import DeterministicRNG

MAX_SLOTS = int_env("BENCH_E14_SLOTS", 1_500_000, minimum=1)
SLOT_SWEEP = tuple(s for s in (500_000, 1_500_000) if s <= MAX_SLOTS) or (MAX_SLOTS,)
#: Pre-PR 4 end-to-end throughput on the reference container (1.5M slots in
#: ~0.526 s); the speedup gate is measured against this.
BASELINE_SLOTS_PER_SEC = float_env("BENCH_E14_BASELINE_SLOTS_PER_SEC", 2.85e6)
MIN_SPEEDUP = float_env("BENCH_E14_MIN_SPEEDUP", 2.5)
#: Timed repetitions per configuration; the fastest is reported, which keeps
#: a single-shot scheduling hiccup on a busy host from tripping the gate.
REPS = int_env("BENCH_E14_REPS", 3, minimum=1)


def _run_best(slots, seed, attacked):
    """Best-of-REPS timing; the digests must agree across repetitions."""
    runs = [_run(slots, seed, attacked) for _ in range(max(REPS, 1))]
    assert len({r["sift_digest"] for r in runs}) == 1, "nondeterministic sift stream"
    assert len({r["pool_digest"] for r in runs}) == 1, "nondeterministic pool bits"
    return min(runs, key=lambda r: r["seconds"])


def _run(slots, seed, attacked):
    link = QKDLink(LinkParameters.paper_link(), DeterministicRNG(seed))
    if attacked:
        # A 25%-intercept eavesdropper: QBER rises but stays below the abort
        # threshold, so the whole distillation path still runs.
        link.attach_attack(InterceptResendAttack(intercept_fraction=0.25))
    started = time.perf_counter()
    report = link.run_slots(slots)
    elapsed = time.perf_counter() - started

    sift_digest = hashlib.sha256()
    for outcome in report.outcomes:
        sift_digest.update(str(outcome.sifted_bits).encode())
        sift_digest.update(str(outcome.qber).encode())
    pool_digest = hashlib.sha256()
    for block in link.engine.alice_pool.blocks:
        pool_digest.update(str(block.bits).encode())
    return {
        "slots": slots,
        "attacked": attacked,
        "seconds": elapsed,
        "slots_per_sec": slots / elapsed if elapsed else float("inf"),
        "sifted_bits": report.sifted_bits,
        "distilled_bits": report.distilled_bits,
        "qber": report.mean_qber,
        "sift_digest": sift_digest.hexdigest(),
        "pool_digest": pool_digest.hexdigest(),
    }


def test_e14_slot_throughput(benchmark, table):
    def experiment():
        runs = []
        for attacked in (False, True):
            for slots in SLOT_SWEEP:
                runs.append(_run_best(slots, seed=7, attacked=attacked))
        # Determinism probe: one more largest clean run from the same seed.
        runs.append(_run(SLOT_SWEEP[-1], seed=7, attacked=False))
        return runs

    runs = run_once(benchmark, experiment)
    *sweep, repeat = runs

    rows = [
        [
            run["slots"],
            "intercept-resend 25%" if run["attacked"] else "none",
            f"{run['seconds']:.3f}",
            f"{run['slots_per_sec'] / 1e6:.2f}M",
            run["sifted_bits"],
            run["distilled_bits"],
            f"{run['qber']:.3f}",
            f"{run['slots_per_sec'] / BASELINE_SLOTS_PER_SEC:.2f}x",
        ]
        for run in sweep
    ]
    table(
        f"E14: end-to-end slot throughput on the default link "
        f"(baseline {BASELINE_SLOTS_PER_SEC / 1e6:.2f}M slots/s pre-PR 4)",
        ["slots", "attack", "seconds", "slots/s", "sifted bits", "distilled bits", "QBER", "vs baseline"],
        rows,
    )

    # Sanity: the link actually distills key on the clean runs, and the
    # attack shows up as elevated QBER without silencing the pipeline.
    clean_big = next(
        r for r in sweep if not r["attacked"] and r["slots"] == SLOT_SWEEP[-1]
    )
    assert clean_big["sifted_bits"] > 0
    if SLOT_SWEEP[-1] >= 1_000_000:
        # Smaller smoke batches flush a sub-viable partial block (the default
        # link sifts ~0.0017 bits/slot; a full 2048-bit block needs ~1.2M
        # slots), so distilled output is only asserted at full scale.
        assert clean_big["distilled_bits"] > 0
    attacked_runs = [r for r in sweep if r["attacked"]]
    assert all(r["qber"] > clean_big["qber"] for r in attacked_runs)

    # Determinism contract: same seed, same sifted stream, same pool bits.
    assert repeat["sift_digest"] == clean_big["sift_digest"]
    assert repeat["pool_digest"] == clean_big["pool_digest"]
    assert repeat["sifted_bits"] == clean_big["sifted_bits"]

    # Throughput gate: ≥ MIN_SPEEDUP x the pre-PR 4 baseline ("0" disables).
    if os.environ.get("BENCH_E14_REQUIRE_SPEEDUP") != "0":
        floor = MIN_SPEEDUP * BASELINE_SLOTS_PER_SEC
        assert clean_big["slots_per_sec"] >= floor, (
            f"end-to-end throughput {clean_big['slots_per_sec']/1e6:.2f}M slots/s "
            f"is below the gate of {floor/1e6:.2f}M "
            f"({MIN_SPEEDUP}x the {BASELINE_SLOTS_PER_SEC/1e6:.2f}M baseline)"
        )
