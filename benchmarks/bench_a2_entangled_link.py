"""A2 (extension) — the planned entangled-photon link vs the weak-coherent link.

Section 3/8 of the paper: "In coming years, we plan to build a second link
based on two-photon entanglement"; section 6 explains why: for an entangled
source the multi-photon leakage Eve can exploit is "only proportional to the
number of received bits times the multi-photon probability", whereas the
weak-coherent source is exposed in proportion to the *transmitted* count.

This benchmark runs both simulated links end to end (same fiber, detectors and
protocol engine) and compares raw rate, QBER, and the worst-case secret
fraction under the paranoid transmitted-count accounting — the regime where
the entangled source earns its keep.
"""

from benchmarks.conftest import run_once
from repro.core.entropy_estimation import BennettDefense, EntropyEstimator, EntropyInputs
from repro.link import LinkParameters, QKDLink
from repro.util.rng import DeterministicRNG


def test_a2_weak_coherent_vs_entangled_link(benchmark, table):
    def experiment():
        weak = QKDLink(LinkParameters.paper_link(), DeterministicRNG(71), name="weak-coherent")
        entangled = QKDLink(LinkParameters.entangled_link(10.0), DeterministicRNG(71), name="entangled")
        weak_report = weak.run_seconds(2.0)
        entangled_report = entangled.run_seconds(4.0)
        return weak, weak_report, entangled, entangled_report

    weak, weak_report, entangled, entangled_report = run_once(benchmark, experiment)
    table(
        "A2: weak-coherent (first link) vs entangled SPDC (planned second link), 10 km",
        ["quantity", "weak-coherent", "entangled"],
        [
            ["sifted rate (bits/s)", f"{weak_report.sifted_rate_bps:.0f}", f"{entangled_report.sifted_rate_bps:.0f}"],
            ["QBER", f"{weak_report.mean_qber:.1%}", f"{entangled_report.mean_qber:.1%}"],
            ["distilled rate (bits/s)", f"{weak_report.distilled_rate_bps:.0f}", f"{entangled_report.distilled_rate_bps:.0f}"],
            ["keys match", weak.engine.keys_match, entangled.engine.keys_match],
        ],
    )
    # Both links work end to end; the brighter attenuated laser sifts faster.
    assert weak_report.distilled_bits > 0
    assert entangled_report.distilled_bits > 0
    assert weak_report.sifted_rate_bps > entangled_report.sifted_rate_bps
    assert weak.engine.keys_match and entangled.engine.keys_match


def test_a2_worst_case_accounting_favours_entanglement(benchmark, table):
    """Under transmitted-count (POVM/PNS worst case) accounting the
    weak-coherent link keeps no key while the entangled link does."""

    def experiment():
        estimator = EntropyEstimator(defense=BennettDefense(), worst_case_multiphoton=True)
        common = dict(
            sifted_bits=4096,
            error_bits=260,
            transmitted_pulses=4096 * 300,
            disclosed_parities=1400,
            mean_photon_number=0.1,
        )
        weak = estimator.estimate(EntropyInputs(entangled_source=False, **common))
        entangled = estimator.estimate(EntropyInputs(entangled_source=True, **common))
        return weak, entangled

    weak, entangled = run_once(benchmark, experiment)
    table(
        "A2: worst-case multi-photon accounting per 4096-bit block",
        ["source", "multi-photon charge", "distillable bits"],
        [
            ["weak-coherent", f"{weak.transparent.information_bits:.0f}", weak.distillable_bits],
            ["entangled", f"{entangled.transparent.information_bits:.0f}", entangled.distillable_bits],
        ],
    )
    assert weak.distillable_bits == 0
    assert entangled.distillable_bits > 0
