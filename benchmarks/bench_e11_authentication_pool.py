"""E11 — Authentication key consumption, replenishment and DoS (sections 2, 5).

Paper claims: Wegman-Carter authentication consumes shared secret bits that
"cannot be re-used even once", "a complete authenticated conversation can
validate a large number of new, shared secret bits from QKD, and a small
number of these may be used to replenish the pool", and prepositioned-key
authentication "appears open to denial of service attacks in which an
adversary forces a QKD system to exhaust its stockpile of key material".

Part one shows the steady-state balance: distilling blocks consumes
authentication pad but replenishment more than covers it.  Part two runs the
key-exhaustion DoS and measures how long pools of different sizes survive.
"""

from benchmarks.conftest import run_once
from repro.core.engine import EngineParameters, QKDProtocolEngine
from repro.eve import KeyExhaustionDoS
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG


def _noisy_pair(n, rate, seed):
    rng = DeterministicRNG(seed)
    alice = BitString.random(n, rng)
    errors = rng.sample(range(n), int(round(rate * n)))
    bob = alice.to_list()
    for index in errors:
        bob[index] ^= 1
    return alice, BitString(bob)


def test_e11_steady_state_pool_balance(benchmark, table):
    def experiment():
        engine = QKDProtocolEngine(
            EngineParameters(auth_replenish_bits=128), DeterministicRNG(51)
        )
        start = engine.alice_auth.available_secret_bits
        history = [start]
        for block_index in range(8):
            alice, bob = _noisy_pair(2048, 0.06, seed=100 + block_index)
            engine.distill_block(alice, bob, transmitted_pulses=600_000)
            history.append(engine.alice_auth.available_secret_bits)
        return start, history, engine.alice_auth.statistics

    start, history, stats = run_once(benchmark, experiment)
    table(
        "E11: authentication pool level while distilling 8 blocks (replenish 128 bits/block)",
        ["after block", "pool bits", "consumed so far", "replenished so far"],
        [
            [index, level, stats.secret_bits_consumed if index == 8 else "-",
             stats.secret_bits_replenished if index == 8 else "-"]
            for index, level in enumerate(history)
        ],
    )
    # Consumption per block is 2 tags x 32 bits; replenishment is 128 bits, so
    # the pool grows in steady state — the sustainability claim of section 5.
    assert history[-1] > start
    assert stats.secret_bits_replenished > stats.secret_bits_consumed
    assert all(b >= a - 64 for a, b in zip(history, history[1:]))


def test_e11_dos_exhaustion_vs_pool_size(benchmark, table):
    def experiment():
        rows = []
        for preshared_bits in (512, 1024, 2048, 4096):
            engine = QKDProtocolEngine(
                EngineParameters(preshared_secret_bits=preshared_bits), DeterministicRNG(52)
            )
            attack = KeyExhaustionDoS(induced_qber=0.30, block_bits=256)
            outcome = attack.run(engine, max_rounds=400, rng=DeterministicRNG(53))
            rows.append((preshared_bits, outcome))
        return rows

    rows = run_once(benchmark, experiment)
    table(
        "E11: rounds of denial-of-service survived before authentication fails",
        ["preshared bits", "rounds survived", "pool exhausted", "key distilled during attack"],
        [
            [bits, outcome.rounds_survived, outcome.pool_exhausted, outcome.distilled_bits_during_attack]
            for bits, outcome in rows
        ],
    )
    # The attack always wins eventually (no key forms to replenish the pool) ...
    assert all(outcome.pool_exhausted for _, outcome in rows)
    assert all(outcome.distilled_bits_during_attack == 0 for _, outcome in rows)
    # ... but bigger prepositioned pools survive proportionally longer.
    survived = [outcome.rounds_survived for _, outcome in rows]
    assert all(a < b for a, b in zip(survived, survived[1:]))
