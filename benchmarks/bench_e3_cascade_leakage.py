"""E3 — Cascade error correction: disclosure vs error rate (section 5).

Paper claims: the BBN Cascade variant is "adaptive, in that it will not
disclose too many bits if the number of errors is low, but it will accurately
detect and correct a large number of errors (up to some limit) even if that
number is well above the historical average"; every disclosed parity reduces
the distillable key.

This benchmark sweeps the injected error rate, reports parities disclosed
(absolute and relative to the Shannon limit n*h(e)), residual errors and the
correction success rate.
"""

from benchmarks.conftest import run_once
from repro.core.cascade import CascadeProtocol
from repro.mathkit.entropy import binary_entropy
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG

BLOCK_BITS = 2048
ERROR_RATES = [0.005, 0.01, 0.02, 0.03, 0.05, 0.07, 0.09, 0.11]


def _noisy_pair(n, rate, seed):
    rng = DeterministicRNG(seed)
    reference = BitString.random(n, rng)
    errors = rng.sample(range(n), int(round(rate * n)))
    noisy = reference.to_list()
    for index in errors:
        noisy[index] ^= 1
    return reference, BitString(noisy)


def test_e3_disclosure_vs_error_rate(benchmark, table):
    def experiment():
        rows = []
        for rate in ERROR_RATES:
            reference, noisy = _noisy_pair(BLOCK_BITS, rate, seed=int(rate * 1000))
            protocol = CascadeProtocol(rng=DeterministicRNG(7))
            result = protocol.reconcile(reference, noisy, error_rate_hint=rate)
            shannon = BLOCK_BITS * binary_entropy(max(rate, 1e-6))
            rows.append(
                {
                    "rate": rate,
                    "disclosed": result.disclosed_parities,
                    "shannon": shannon,
                    "efficiency": result.disclosed_parities / shannon if shannon else float("inf"),
                    "corrected": result.matches_reference,
                    "bisections": result.bisection_queries,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    table(
        "E3: Cascade disclosure vs injected error rate (2048-bit blocks)",
        ["QBER", "parities disclosed", "Shannon n*h(e)", "ratio", "fully corrected"],
        [
            [
                f"{r['rate']:.1%}",
                r["disclosed"],
                f"{r['shannon']:.0f}",
                f"{r['efficiency']:.2f}" if r["shannon"] else "-",
                r["corrected"],
            ]
            for r in rows
        ],
    )
    # Every block is fully corrected across the whole sweep.
    assert all(r["corrected"] for r in rows)
    # Adaptive disclosure: more errors, more parities disclosed.
    disclosed = [r["disclosed"] for r in rows]
    assert all(a < b for a, b in zip(disclosed, disclosed[1:]))
    # Efficiency stays within a factor ~2 of the Shannon limit at realistic rates.
    for r in rows:
        if r["rate"] >= 0.03:
            assert r["efficiency"] < 2.0


def test_e3_low_error_blocks_disclose_little(benchmark, table):
    """The adaptivity claim in isolation: near-clean blocks cost almost nothing extra."""

    def experiment():
        clean_ref, clean_noisy = _noisy_pair(BLOCK_BITS, 0.002, seed=1)
        noisy_ref, noisy_noisy = _noisy_pair(BLOCK_BITS, 0.08, seed=2)
        clean = CascadeProtocol(rng=DeterministicRNG(8)).reconcile(
            clean_ref, clean_noisy, error_rate_hint=0.002
        )
        noisy = CascadeProtocol(rng=DeterministicRNG(8)).reconcile(
            noisy_ref, noisy_noisy, error_rate_hint=0.08
        )
        return clean, noisy

    clean, noisy = run_once(benchmark, experiment)
    table(
        "E3: adaptivity (disclosure at 0.2% vs 8% error rate)",
        ["block", "errors corrected", "parities disclosed", "bisection queries"],
        [
            ["0.2% errors", clean.errors_corrected, clean.disclosed_parities, clean.bisection_queries],
            ["8% errors", noisy.errors_corrected, noisy.disclosed_parities, noisy.bisection_queries],
        ],
    )
    assert clean.disclosed_parities < noisy.disclosed_parities / 2
