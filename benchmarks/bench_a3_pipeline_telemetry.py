"""A3 (instrumentation) — where the distillation pipeline spends its time.

The stage-based engine (repro.pipeline) times every stage execution, so the
hot-path question the ROADMAP keeps asking — which stage do we optimise
next? — has a measured answer instead of a guess.  (First answer it gave:
Wegman-Carter authentication of the full transcript, not Cascade, dominates
the per-block budget.  The packed-word bit kernel then cut that stage from
~5700 ms to ~35 ms per 2048-bit block on the reference machine — the
per-stage history lives in the BENCH_*.json trajectory, see conftest.)
This benchmark distills a batch of blocks through the default plan and
prints the cumulative per-stage wall-clock budget, plus the same batch
through the Slutsky-defense plan to show that swapping one registry key
leaves the cost profile comparable.

``BENCH_A3_BLOCKS`` / ``BENCH_A3_BLOCK_BITS`` shrink the run for the CI
smoke job, which only asserts the telemetry shape, not absolute time.
"""


from benchmarks.conftest import int_env, run_once
from repro.core.engine import EngineParameters, QKDProtocolEngine
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG

BLOCK_BITS = int_env("BENCH_A3_BLOCK_BITS", 2048, minimum=1)
ERROR_RATE = 0.06
N_BLOCKS = int_env("BENCH_A3_BLOCKS", 8, minimum=1)

SLUTSKY_PLAN = (
    "alarm.qber",
    "cascade.bicon",
    "entropy.slutsky",
    "privacy.gf2n",
    "auth.wegman_carter",
    "deliver.pools",
)


def _noisy_pair(seed):
    rng = DeterministicRNG(seed)
    reference = BitString.random(BLOCK_BITS, rng)
    errors = rng.sample(range(BLOCK_BITS), int(round(ERROR_RATE * BLOCK_BITS)))
    noisy = reference.to_list()
    for index in errors:
        noisy[index] ^= 1
    return reference, BitString(noisy)


def _distill_batch(parameters):
    engine = QKDProtocolEngine(parameters, DeterministicRNG(7))
    for seed in range(N_BLOCKS):
        alice, bob = _noisy_pair(100 + seed)
        engine.distill_block(alice, bob, transmitted_pulses=500_000)
    return engine


def test_a3_per_stage_time_budget(benchmark, table):
    def experiment():
        default = _distill_batch(EngineParameters())
        slutsky = _distill_batch(EngineParameters(stages=SLUTSKY_PLAN))
        return default, slutsky

    default, slutsky = run_once(benchmark, experiment)

    rows = []
    for engine, label in ((default, "default plan"), (slutsky, "slutsky plan")):
        telemetry = engine.pipeline.telemetry
        total = telemetry.total_seconds
        for timing in telemetry.summary():
            rows.append(
                [
                    label,
                    timing.stage,
                    timing.calls,
                    f"{timing.seconds * 1e3:8.2f}",
                    f"{timing.seconds / total:6.1%}" if total else "-",
                ]
            )
    table(
        f"A3: per-stage wall-clock over {N_BLOCKS} blocks of {BLOCK_BITS} bits",
        ["plan", "stage", "calls", "ms total", "share"],
        rows,
    )

    # The shape the refactor promises: telemetry covers every stage, both
    # plans distill key, and the measured hot path is one of the two
    # transcript-heavy stages.  (Before the packed bit kernel, Wegman-Carter
    # transcript authentication dwarfed even Cascade at ~95% of block time;
    # after it, the two are within a small factor of each other — exactly
    # the kind of shift the telemetry exists to surface.)
    for engine in (default, slutsky):
        assert engine.pipeline.telemetry.blocks_processed == N_BLOCKS
        assert engine.statistics.blocks_distilled > 0
        dominant = engine.pipeline.telemetry.summary()[0]
        assert dominant.stage in ("auth.wegman_carter", "cascade.bicon")
