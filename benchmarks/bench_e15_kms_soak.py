"""E15 (continuous operation) — key-management soak over a relay mesh.

The paper's headline scenario run as a *system*: a 9-node trusted-relay
mesh (5 endpoints, 4 relays, 10 gateway pairs) operated for simulated hours
by :mod:`repro.kms` — links distill pairwise key epoch by epoch, the relay
layer transports end-to-end keys into per-pair stores, and IKE daemons
drain the stores under a traffic-driven rekey workload, through a mid-run
DoS link cut and a mid-run eavesdropping attack.

The table reports what the network *sustained*: delivered keys/s and key
bits/s of simulated time, rekey latency p50/p99 (how long a Phase-2
negotiation waited for key), starvation and timeout counts, and reroutes.
Two workload profiles are compared — steady Poisson demand and bursty
rekey storms — because the storms are what make reservation semantics and
depletion-aware replenishment visible in the latency tail.

Always asserted: the delivered-key digest is bit-identical when the
replenishment fan-out runs on 1 vs 2 workers (the subsystem's determinism
contract), every run completes with zero starvation deadlocks (every demand
reaches a terminal state), and the network keeps serving through both
injected failures.

Knobs for CI smoke runs: ``BENCH_E15_HOURS`` (simulated hours, default 4),
``BENCH_E15_PAIR_MEAN_SECONDS`` (mean rekey interval), ``BENCH_E15_EPOCH_SECONDS``,
``BENCH_E15_ENDPOINTS`` / ``BENCH_E15_RELAYS`` (mesh size).  With
``BENCH_JSON_DIR`` set the table lands in ``BENCH_bench_e15_kms_soak.json``
for the nightly perf trajectory.
"""

import time

from benchmarks.conftest import float_env, int_env, run_once
from repro.eve.intercept_resend import InterceptResendAttack
from repro.kms import (
    KeyManagementService,
    KmsConfig,
    ReplenishmentConfig,
    TrafficWorkload,
    WorkloadProfile,
)
from repro.network.relay import TrustedRelayNetwork
from repro.util.rng import DeterministicRNG

HOURS = float_env("BENCH_E15_HOURS", 4.0, minimum=0.1)
N_ENDPOINTS = int_env("BENCH_E15_ENDPOINTS", 5, minimum=2)
# The failure injection targets relay-3, so the relay ring must reach it.
N_RELAYS = int_env("BENCH_E15_RELAYS", 4, minimum=4)
EPOCH_SECONDS = float_env("BENCH_E15_EPOCH_SECONDS", 120.0, minimum=1.0)
PAIR_MEAN_SECONDS = float_env("BENCH_E15_PAIR_MEAN_SECONDS", 120.0, minimum=1.0)

PROFILES = (
    ("poisson", WorkloadProfile.poisson(PAIR_MEAN_SECONDS)),
    (
        "bursty",
        WorkloadProfile.bursty(
            2.5 * PAIR_MEAN_SECONDS, burst_size=4, burst_spread_seconds=5.0
        ),
    ),
)


def _soak(profile, workers):
    relays = TrustedRelayNetwork.for_mesh(
        n_endpoints=N_ENDPOINTS, n_relays=N_RELAYS, rng=DeterministicRNG(7)
    )
    config = KmsConfig(
        replenishment=ReplenishmentConfig(
            epoch_seconds=EPOCH_SECONDS, workers=workers, backend="thread"
        )
    )
    rng = DeterministicRNG(7)
    service = KeyManagementService(
        relays,
        config,
        workload=TrafficWorkload(profile, rng.fork_labeled("bench-workload")),
        rng=rng,
    )
    horizon = HOURS * 3600.0
    # A DoS takedown one quarter in, an eavesdropper at the half-way mark.
    service.schedule_link_cut(horizon * 0.25, "relay-0", "relay-1")
    service.schedule_attack(
        horizon * 0.5, "relay-2", "relay-3", InterceptResendAttack(1.0)
    )
    started = time.perf_counter()
    report = service.serve(hours=HOURS)
    wall = time.perf_counter() - started
    return report, wall


def test_e15_kms_soak(benchmark, table):
    def experiment():
        results = {}
        for name, profile in PROFILES:
            results[name] = _soak(profile, workers=1)
        # Determinism probe: the poisson scenario again on 2 workers.
        results["poisson@2w"] = _soak(PROFILES[0][1], workers=2)
        return results

    results = run_once(benchmark, experiment)

    rows = []
    for name, (report, wall) in results.items():
        rows.append(
            [
                name,
                report.demands,
                report.rekeys_completed,
                report.rekeys_timed_out,
                report.starvation_events,
                report.delivered_keys,
                f"{report.keys_per_second:.4f}",
                f"{report.key_bits_per_second:.1f}",
                f"{report.rekey_latency_p50_seconds:.2f}",
                f"{report.rekey_latency_p99_seconds:.2f}",
                report.reroutes,
                f"{wall:.2f}",
            ]
        )
    table(
        f"E15: {HOURS:g}h soak, {N_ENDPOINTS}+{N_RELAYS}-node mesh, "
        f"link cut @25%, eve @50%",
        [
            "workload",
            "demands",
            "rekeys",
            "timeouts",
            "starved",
            "keys",
            "keys/s",
            "bits/s",
            "p50 s",
            "p99 s",
            "reroutes",
            "wall s",
        ],
        rows,
    )

    poisson, _ = results["poisson"]
    replay, _ = results["poisson@2w"]
    # Determinism contract: the delivered key material cannot depend on the
    # replenishment fan-out's worker count.
    assert poisson.delivered_digest == replay.delivered_digest, (
        "worker count changed the delivered key material"
    )
    for name, (report, _wall) in results.items():
        # Zero starvation deadlocks: every demand reached a terminal (or
        # still-waiting-at-horizon) state.
        assert report.completion_accounted, f"{name}: demands unaccounted"
        assert report.rekeys_completed > 0, f"{name}: nothing rekeyed"
        assert report.delivered_keys > 0, f"{name}: nothing delivered"
        # The injected failures were survived, not crashed over.
        assert ("relay-2", "relay-3") in report.eavesdropped_links
        assert report.rekey_latency_p50_seconds <= report.rekey_latency_p99_seconds
