"""E9 — Untrusted optical switches: insertion loss vs reach (section 8).

Paper claims: "Unlike trusted relays, untrusted switches cannot extend the
geographic reach of a QKD network.  In fact, they may significantly reduce it
since each switch adds at least a fractional dB insertion loss along the
photonic path."

The benchmark sweeps (a) the number of switches on a fixed-length path and
(b) the reachable distance for a given switch count, and contrasts the
result with a trusted-relay chain over the same geography (which pays no
photonic penalty because every hop is a fresh QKD link).
"""

from benchmarks.conftest import run_once
from repro.network.switches import UntrustedSwitchNetwork
from repro.network.topology import QKDNetwork

SWITCH_COUNTS = [0, 1, 2, 3, 4, 5, 6]
SPAN_KM = 5.0
INSERTION_LOSS_DB = 0.5


def test_e9_key_rate_vs_switch_count(benchmark, table):
    def experiment():
        return [UntrustedSwitchNetwork.chain(k, SPAN_KM, INSERTION_LOSS_DB) for k in SWITCH_COUNTS]

    reports = run_once(benchmark, experiment)
    table(
        f"E9: end-to-end key rate vs number of switches ({SPAN_KM:g} km spans, "
        f"{INSERTION_LOSS_DB} dB insertion loss)",
        ["switches", "fiber km", "total loss dB", "QBER", "secret bits/s"],
        [
            [
                r.n_switches,
                f"{r.fiber_length_km:.0f}",
                f"{r.total_loss_db:.1f}",
                f"{r.expected_qber:.1%}",
                f"{r.secret_key_rate_bps:.1f}",
            ]
            for r in reports
        ],
    )
    rates = [r.secret_key_rate_bps for r in reports]
    # Every added switch strictly reduces the key rate.
    assert all(a > b for a, b in zip(rates, rates[1:]))
    # Loss budget grows linearly with switch count.
    for r in reports:
        expected_loss = r.fiber_length_km * 0.2 + r.n_switches * INSERTION_LOSS_DB
        assert abs(r.total_loss_db - expected_loss) < 1e-6


def test_e9_switches_reduce_reach(benchmark, table):
    """Maximum end-to-end distance that still yields key, vs switch count."""

    def experiment():
        rows = []
        for n_switches in (0, 2, 4, 6):
            reach = 0
            for total_km in range(10, 90, 5):
                span = total_km / (n_switches + 1)
                report = UntrustedSwitchNetwork.chain(n_switches, span, INSERTION_LOSS_DB)
                if report.viable:
                    reach = total_km
            rows.append((n_switches, reach))
        return rows

    rows = run_once(benchmark, experiment)
    table(
        "E9: maximum reach with key still flowing",
        ["switches on path", "max end-to-end distance (km)"],
        [[n, f"{reach}"] for n, reach in rows],
    )
    reach = dict(rows)
    # More switches, shorter reach — the paper's central point about untrusted networks.
    assert reach[0] >= reach[2] >= reach[4] >= reach[6]
    assert reach[0] > reach[6]


def test_e9_trusted_relays_extend_reach_where_switches_cannot(benchmark, table):
    """Contrast: a chain of trusted relays spans a distance no single optical path can."""

    def experiment():
        total_km = 80.0
        # Untrusted: one all-optical path with two switches.
        optical = UntrustedSwitchNetwork.chain(2, total_km / 3, INSERTION_LOSS_DB)
        # Trusted: three independent 26.7 km QKD links joined by relays; the
        # end-to-end rate is the bottleneck link rate.
        relay_link_rate = QKDNetwork.estimate_link_rate(total_km / 3)
        return optical, relay_link_rate

    optical, relay_rate = run_once(benchmark, experiment)
    table(
        "E9: 80 km end-to-end — untrusted optical path vs trusted relay chain",
        ["architecture", "secret bits/s"],
        [
            ["all-optical, 2 untrusted switches", f"{optical.secret_key_rate_bps:.1f}"],
            ["3 links via 2 trusted relays", f"{relay_rate:.1f}"],
        ],
    )
    assert optical.secret_key_rate_bps == 0.0
    assert relay_rate > 0.0
