"""E5 — End-to-end key throughput and reach (section 2).

Paper claims: "Today's QKD systems achieve on the order of 1,000 bits/second
throughput for keying material, in realistic settings, and often run at much
lower rates" and "The best current systems can support distances up to about
70 km through fiber, though at very low bit-rates".

Part one measures the simulated link's sifted and distilled throughput at the
paper's operating point (Monte-Carlo, full protocol stack).  Part two sweeps
distance with the analytic rate model and locates the reach limit.
"""

from benchmarks.conftest import run_once
from repro.link import LinkParameters, QKDLink
from repro.util.rng import DeterministicRNG

DISTANCES_KM = [5, 10, 20, 30, 40, 50, 60, 70, 80]


def test_e5_throughput_at_operating_point(benchmark, table):
    def experiment():
        link = QKDLink(LinkParameters.paper_link(), DeterministicRNG(11))
        report = link.run_seconds(3.0)
        return link, report

    link, report = run_once(benchmark, experiment)
    table(
        "E5: key throughput of the simulated 10 km link (3 channel-seconds)",
        ["quantity", "paper", "measured"],
        [
            ["sifted key rate", "O(1000) bits/s", f"{report.sifted_rate_bps:.0f} bits/s"],
            ["distilled key rate", "(not stated)", f"{report.distilled_rate_bps:.0f} bits/s"],
            ["analytic secret rate", "-", f"{link.estimated_secret_key_rate():.0f} bits/s"],
            ["QBER", "6-8 %", f"{report.mean_qber:.1%}"],
        ],
    )
    # Order-of-magnitude check on the paper's 1,000 bits/s figure for keying
    # material (sifted key), and a positive distilled rate behind it.
    assert 500 <= report.sifted_rate_bps <= 5000
    assert report.distilled_rate_bps > 0
    assert report.distilled_rate_bps < report.sifted_rate_bps


def test_e5_key_rate_vs_distance(benchmark, table):
    def experiment():
        rows = []
        for distance in DISTANCES_KM:
            link = QKDLink(LinkParameters.for_distance(distance), DeterministicRNG(12))
            rows.append(
                (
                    distance,
                    link.expected_qber(),
                    link.sifted_rate_bps(),
                    link.estimated_secret_key_rate(),
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    table(
        "E5: secret key rate vs fiber length (analytic model, Bennett defense)",
        ["km", "QBER", "sifted bits/s", "secret bits/s"],
        [[d, f"{q:.1%}", f"{s:.0f}", f"{k:.1f}"] for d, q, s, k in rows],
    )
    secret = {d: k for d, _, _, k in rows}
    # Rates decay with distance.
    values = [k for _, _, _, k in rows]
    assert all(a >= b for a, b in zip(values, values[1:]))
    # Key still flows in the metro range but the link is dead by 80 km —
    # consistent with the paper's "up to about 70 km" for fiber systems.
    assert secret[10] > 50
    assert secret[80] == 0.0
    cutoff = max(d for d, k in secret.items() if k > 0)
    assert 40 <= cutoff <= 75
