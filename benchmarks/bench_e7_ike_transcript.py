"""E7 — Regenerating the Fig 12 IKE transcript.

Fig 12 of the paper shows the racoon log of "the first IKE transaction
setting up a VPN protected by quantum cryptography": a phase-2 negotiation is
answered with a QKD reply ("reply 1 Qblocks 1024 bits ... entropy"), KEYMAT is
computed "using 128 bytes QBITS", and a pair of ESP/Tunnel SAs is established.

This benchmark drives a live negotiation through the simulated IKE daemons and
checks that the responder's log contains the same sequence of events with the
same quantities (1 Qblock, 1024 bits, 128 bytes of QBITS, two SAs installed).
"""

import re

from benchmarks.conftest import run_once
from repro.core.keypool import KeyPool
from repro.ipsec import GatewayPair, IPPacket, SecurityPolicy
from repro.sim.clock import SimClock
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG

#: The event sequence visible in the paper's Fig 12 (responder side).
FIG12_EVENT_PATTERNS = [
    r"isakmp_ph2begin_r\(\): respond new phase 2 negotiation: 192\.1\.99\.35\[0\]<=>192\.1\.99\.34\[0\]",
    r"set_proposal_from_policy\(\): RESPONDER setting QPFS encmodesv 1",
    r"qke_create_reply\(\): reply 1 Qblocks 1024 bits 1024\.000000 entropy \(offer is 1 Qblocks\)",
    r"oakley_compute_keymat_x\(\): KEYMAT using 128 bytes QBITS",
    r"pk_recvupdate\(\): IPsec-SA established: ESP/Tunnel 192\.1\.99\.34->192\.1\.99\.35 spi=\d+\(0x[0-9a-f]+\)",
    r"pk_recvadd\(\): IPsec-SA established: ESP/Tunnel 192\.1\.99\.35->192\.1\.99\.34 spi=\d+\(0x[0-9a-f]+\)",
]


def test_e7_fig12_transcript(benchmark, table):
    def experiment():
        shared = BitString.random(60_000, DeterministicRNG(31))
        alice_pool, bob_pool = KeyPool(name="alice"), KeyPool(name="bob")
        alice_pool.add_bits(shared)
        bob_pool.add_bits(shared)
        pair = GatewayPair(alice_pool, bob_pool, SimClock(), DeterministicRNG(32))
        pair.add_symmetric_policy(
            SecurityPolicy(
                name="fig12",
                source_network="10.1.0.0/16",
                destination_network="10.2.0.0/16",
                qkd_bits_per_rekey=1024,
            )
        )
        pair.establish()
        delivered = pair.transmit(IPPacket("10.1.0.1", "10.2.0.1", b"traffic flowed a few moments later"))
        return pair.bob.ike.log_lines, delivered

    bob_log, delivered = run_once(benchmark, experiment)

    table(
        "E7: responder (bob-gw) racoon log — compare with the paper's Fig 12",
        ["line"],
        [[line] for line in bob_log],
    )

    # The traffic actually flowed through the negotiated SA.
    assert delivered is not None

    # Every Fig 12 event appears, in order, in the responder's log.
    log_text = "\n".join(bob_log)
    positions = []
    for pattern in FIG12_EVENT_PATTERNS:
        match = re.search(pattern, log_text)
        assert match is not None, f"missing Fig 12 event: {pattern}"
        positions.append(match.start())
    assert positions == sorted(positions), "Fig 12 events appear out of order"

    # The KEYMAT line reports exactly one Qblock = 1024 bits = 128 bytes, as in the figure.
    assert "reply 1 Qblocks 1024 bits" in log_text
    assert "KEYMAT using 128 bytes QBITS" in log_text
