"""E1 — The paper's operating point (section 4).

Paper claims: "our weak-coherent link is operating with a 1 MHz pulse
repetition rate, mean photon-emission number of 0.1 photons per pulse, and
approximately a 6-8% Quantum Bit Error Rate (QBER)" over the 10 km fiber
spool.  This benchmark Monte-Carlos the simulated link at that operating
point and sweeps QBER versus fiber length.
"""

from benchmarks.conftest import run_once
from repro.optics.channel import ChannelParameters, QuantumChannel
from repro.util.rng import DeterministicRNG

DISTANCES_KM = [0, 5, 10, 20, 30, 40, 50, 60, 70]


def test_e1_operating_point_qber(benchmark, table):
    def experiment():
        channel = QuantumChannel(ChannelParameters.paper_operating_point(), DeterministicRNG(1))
        result = channel.transmit(3_000_000)
        return {
            "expected_qber": channel.expected_qber(),
            "measured_qber": result.qber,
            "sifted_per_second": channel.sifted_rate_per_second(),
            "n_sifted": result.n_sifted,
        }

    outcome = run_once(benchmark, experiment)
    table(
        "E1: weak-coherent link at the paper's operating point (mu=0.1, 1 MHz, 10 km)",
        ["quantity", "paper", "measured"],
        [
            ["QBER", "6-8 %", f"{outcome['measured_qber']:.1%}"],
            ["QBER (analytic)", "6-8 %", f"{outcome['expected_qber']:.1%}"],
            ["sifted rate", "O(1000) bits/s", f"{outcome['sifted_per_second']:.0f} bits/s"],
        ],
    )
    # Shape assertions: the measured QBER falls in the paper's stated band.
    assert 0.05 <= outcome["measured_qber"] <= 0.09
    assert 0.06 <= outcome["expected_qber"] <= 0.08


def test_e1_qber_vs_distance(benchmark, table):
    def experiment():
        rows = []
        for distance in DISTANCES_KM:
            channel = QuantumChannel(ChannelParameters.for_distance(distance), DeterministicRNG(2))
            rows.append((distance, channel.expected_qber(), channel.sifted_rate_per_second()))
        return rows

    rows = run_once(benchmark, experiment)
    table(
        "E1: QBER and sifted rate vs fiber length",
        ["km", "QBER", "sifted bits/s"],
        [[d, f"{q:.1%}", f"{r:.0f}"] for d, q, r in rows],
    )
    qbers = [q for _, q, _ in rows]
    rates = [r for _, _, r in rows]
    # QBER rises monotonically with distance; the sifted rate falls.
    assert all(a <= b + 1e-9 for a, b in zip(qbers, qbers[1:]))
    assert all(a >= b for a, b in zip(rates, rates[1:]))
    # At 70 km the error rate is near/above the BB84 abort region, matching the
    # paper's "up to about 70 km" limit for fiber QKD.
    assert qbers[-1] > 0.10
