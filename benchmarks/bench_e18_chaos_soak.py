"""E18 (chaos soak) — goodput and recovery time under deterministic faults.

The robustness benchmark: fleets of
:class:`~repro.netkms.resilient.ResilientKmsClient` SAEs draw fixed-size
keys from a :class:`~repro.netkms.server.NetworkKmsServer` while a seeded
:class:`~repro.faults.FaultPlane` injects connection refusals, frame drops
(before *and* after the request got out), reply delays, and in-server
stalls at increasing intensities.  Each intensity level serves the same
request volume from identically refilled stores.

Always asserted — the disruption-tolerance contract from the chaos soak,
at bench scale:

* every requested key is delivered exactly once at every fault level (no
  overlap between any two delivered chunks of the counter material);
* the order-independent served digest is **identical across all fault
  levels including fault-free** — faults may cost time, never key
  material;
* the server's reaped-bits counter reconciles exactly with the stores'
  own released-bits ledger, and nothing is left reserved (no leak).

Reported per level: goodput (keys/s and kbit/s of delivered material),
recovery-time p50/p99 (wall seconds from a request's first failure to its
eventual success), retries, reconnects, timeouts, replays, and reaped
reservations.

Knobs for CI smoke runs: ``BENCH_E18_REQUESTS`` (total get_key calls per
level, default 120), ``BENCH_E18_BITS`` (key size, default 512),
``BENCH_E18_CLIENTS`` (fleet size, default 4).  With ``BENCH_JSON_DIR``
set the table lands in ``BENCH_bench_e18_chaos_soak.json`` for the
nightly trajectory.
"""

import asyncio
import struct
import time

from benchmarks.conftest import int_env, run_once
from repro.faults import (
    DELAY,
    DROP_AFTER,
    DROP_BEFORE,
    REFUSE,
    SITE_CLIENT_RX,
    SITE_CLIENT_TX,
    SITE_CONNECT,
    SITE_SERVER_REQUEST,
    STALL,
    FaultPlane,
    FaultyConnector,
    stall_hook,
)
from repro.kms.service import percentile
from repro.kms.store import KeyStore
from repro.netkms.resilient import ResilientKmsClient, RetryPolicy
from repro.netkms.server import NetworkKmsServer
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG

REQUESTS = int_env("BENCH_E18_REQUESTS", 120, minimum=8)
BITS = int_env("BENCH_E18_BITS", 512, minimum=64)
N_CLIENTS = int_env("BENCH_E18_CLIENTS", 4, minimum=1)

PAIR = ("sae-a", "sae-b")
SEED = 2026

#: The fault sweep: per-operation probabilities per site, by intensity.
FAULT_LEVELS = {
    "none": None,
    "mild": {
        SITE_CONNECT: {REFUSE: 0.02},
        SITE_CLIENT_TX: {DROP_BEFORE: 0.01, DROP_AFTER: 0.01},
        SITE_CLIENT_RX: {DROP_BEFORE: 0.01, DELAY: 0.05},
    },
    "harsh": {
        SITE_CONNECT: {REFUSE: 0.08},
        SITE_CLIENT_TX: {DROP_BEFORE: 0.04, DROP_AFTER: 0.04},
        SITE_CLIENT_RX: {DROP_BEFORE: 0.04, DELAY: 0.10},
        SITE_SERVER_REQUEST: {STALL: 0.03},
    },
}


def build_store():
    """Counter material: any double-serve or overlap is exactly detectable."""
    total_bits = REQUESTS * BITS
    store = KeyStore(
        PAIR, capacity_bits=2 * total_bits, low_water_bits=0, high_water_bits=total_bits
    )
    material = b"".join(struct.pack(">Q", word) for word in range(total_bits // 64))
    store.deposit(BitString.from_bytes(material))
    return store


async def run_level(level_name, rates):
    store = build_store()
    plane = FaultPlane(
        DeterministicRNG(SEED),
        rates=rates or {},
        delay_range=(0.001, 0.01),
        stall_range=(0.3, 0.5),  # past the client's 0.2 s request timeout
    )
    faulted = rates is not None
    server = NetworkKmsServer(
        {PAIR: store},
        port=0,
        lease_seconds=30.0,
        reap_interval_seconds=None,
        request_hook=stall_hook(plane) if faulted else None,
    )
    await server.start()
    delivered = []
    clients = []
    try:
        share = [REQUESTS // N_CLIENTS] * N_CLIENTS
        for extra in range(REQUESTS % N_CLIENTS):
            share[extra] += 1

        async def one_client(index, count):
            client = ResilientKmsClient(
                "127.0.0.1",
                server.port,
                client_id=f"sae-{index}",
                rng=DeterministicRNG(SEED).fork_labeled(f"sae/{index}"),
                connector=FaultyConnector(plane) if faulted else None,
                policy=RetryPolicy(
                    max_attempts=12,
                    base_backoff_seconds=0.002,
                    max_backoff_seconds=0.05,
                    request_timeout_seconds=0.2,
                ),
            )
            clients.append(client)
            keys = []
            for _ in range(count):
                keys.append((await client.get_key(PAIR, BITS)).key_bytes)
            await client.close()
            return keys

        started = time.perf_counter()
        per_client = await asyncio.gather(
            *(one_client(index, count) for index, count in enumerate(share))
        )
        wall = time.perf_counter() - started
        for keys in per_client:
            delivered.extend(keys)
    finally:
        await server.stop()

    recoveries = [t for c in clients for t in c.stats.recovery_seconds]
    totals = {
        "wall": wall,
        "recoveries": recoveries,
        "retries": sum(c.stats.retries for c in clients),
        "reconnects": sum(c.stats.reconnects for c in clients),
        "timeouts": sum(c.stats.timeouts for c in clients),
    }
    return delivered, store, server.metrics.report(), plane, totals


def test_e18_chaos_soak(benchmark, table):
    def experiment():
        return {
            name: asyncio.run(run_level(name, rates))
            for name, rates in FAULT_LEVELS.items()
        }

    results = run_once(benchmark, experiment)

    rows = []
    for name, (delivered, _store, report, plane, totals) in results.items():
        recoveries = totals["recoveries"]
        rows.append(
            [
                name,
                plane.stats.injections,
                f"{len(delivered) / totals['wall']:.0f}",
                f"{len(delivered) * BITS / totals['wall'] / 1e3:.0f}",
                f"{percentile(recoveries, 50) * 1e3:.1f}" if recoveries else "-",
                f"{percentile(recoveries, 99) * 1e3:.1f}" if recoveries else "-",
                totals["retries"],
                totals["reconnects"],
                totals["timeouts"],
                report.consume_replays,
                report.reservations_reaped,
                report.served_digest[:12],
            ]
        )
    table(
        f"E18: chaos soak, {REQUESTS} x {BITS}-bit get_key across "
        f"{N_CLIENTS} resilient SAEs per fault level",
        [
            "faults",
            "injected",
            "keys/s",
            "kbit/s",
            "rec p50 ms",
            "rec p99 ms",
            "retries",
            "reconn",
            "timeouts",
            "replays",
            "reaped",
            "digest",
        ],
        rows,
    )

    digests = set()
    for name, (delivered, store, report, plane, _totals) in results.items():
        # Exactly once: every request answered, no two chunks overlap.
        assert len(delivered) == REQUESTS, f"{name}: lost or duplicated requests"
        counters = [
            word for chunk in delivered for (word,) in struct.iter_unpack(">Q", chunk)
        ]
        assert len(counters) == len(set(counters)), f"{name}: overlapping material"
        # No reservation leak: the reaper's ledger reconciles with the
        # store's, and nothing stays reserved after the run.
        assert report.reaped_bits == store.statistics.bits_released, name
        assert store.reserved_bits == 0, name
        digests.add(report.served_digest)
    # Faults cost time, never key material: one digest across the sweep.
    assert len(digests) == 1, "fault injection changed the served key material"
    harsh_plane = results["harsh"][3]
    assert harsh_plane.stats.injections >= 1, "the harsh level injected nothing"
