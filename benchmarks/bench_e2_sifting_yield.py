"""E2 — Sifting yield (section 5).

Paper claim: "assume that 1% of the photons that Alice tries to transmit are
actually received at Bob ...  On average, Alice and Bob will happen to agree
on a basis 50% of the time in BB84.  Thus only 50% x 1% of Alice's photons
give rise to a sifted bit, i.e., 1 photon in 200.  A transmitted stream of
1,000 bits therefore would boil down to about 5 sifted bits."

Part one reproduces that worked example exactly (1 % detection probability);
part two reports the sifted yield of the actual simulated link.
"""


from benchmarks.conftest import run_once
from repro.core.sifting import SiftingProtocol
from repro.optics.channel import ChannelParameters, QuantumChannel
from repro.optics.detector import DetectorParameters
from repro.optics.fiber import OpticalPath
from repro.optics.source import SourceParameters
from repro.util.rng import DeterministicRNG


def _one_percent_detection_channel():
    """A channel tuned so ~1% of transmitted pulses produce a click, as in the example."""
    # mu * T_path * T_rx * eta = mean detected photons; choose values giving ~0.01.
    return QuantumChannel(
        ChannelParameters(
            source=SourceParameters(mean_photon_number=0.1),
            path=OpticalPath.single_span(0.0),
            detectors=DetectorParameters(
                quantum_efficiency=0.101, dark_count_probability=0.0, receiver_loss_db=0.0
            ),
        ),
        DeterministicRNG(3),
    )


def test_e2_one_in_two_hundred(benchmark, table):
    def experiment():
        channel = _one_percent_detection_channel()
        result = channel.transmit(2_000_000)
        sift = SiftingProtocol().sift(result)
        return {
            "click_fraction": result.n_detected / result.n_slots,
            "sifted_fraction": sift.sifted_fraction,
            "sifted_per_1000": 1000.0 * sift.sifted_fraction,
        }

    outcome = run_once(benchmark, experiment)
    table(
        "E2: sifting yield at 1% detection probability (the paper's worked example)",
        ["quantity", "paper", "measured"],
        [
            ["detected fraction", "1 %", f"{outcome['click_fraction']:.2%}"],
            ["sifted fraction", "1 in 200 (0.5 %)", f"{outcome['sifted_fraction']:.2%}"],
            ["sifted bits per 1000 pulses", "about 5", f"{outcome['sifted_per_1000']:.1f}"],
        ],
    )
    assert 0.008 <= outcome["click_fraction"] <= 0.012
    # "about 5 sifted bits" per 1000 transmitted
    assert 4.0 <= outcome["sifted_per_1000"] <= 6.0


def test_e2_sifted_yield_of_real_link(benchmark, table):
    def experiment():
        channel = QuantumChannel(ChannelParameters.paper_operating_point(), DeterministicRNG(4))
        result = channel.transmit(2_000_000)
        sift = SiftingProtocol().sift(result)
        detected = result.n_detected / result.n_slots
        return detected, sift.sifted_fraction

    detected, sifted = run_once(benchmark, experiment)
    table(
        "E2: sifting yield of the simulated 10 km link",
        ["quantity", "value"],
        [
            ["detected fraction", f"{detected:.3%}"],
            ["sifted fraction", f"{sifted:.3%}"],
            ["one sifted bit per", f"{1/sifted:.0f} pulses"],
        ],
    )
    # Sifting keeps about half of the detections.
    assert sifted == pytest.approx(detected / 2, rel=0.15)


import pytest  # noqa: E402  (used in the assertion above)
