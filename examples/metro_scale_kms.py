#!/usr/bin/env python3
"""Metro-scale key management: zones, trunk stores, aggregate demand.

The paper sketches a metro-area QKD network; this example operates one.  A
four-zone metro mesh (each zone a relay ring with endpoints, gateways
joined by trunk links) serves every cross-city gateway pair for a simulated
hour.  Replenishment is hierarchical — each zone schedules only its own
links, the trunk scheduler only the zone crossings — and inter-zone pairs
draw end-to-end key through per-zone-pair trunk stores instead of
transporting across the whole mesh.  Demand is a compound-Poisson
*aggregate* workload: each pair fronts fifty thousand tunnels whose rekey
storms arrive in heavy-tailed bursts, with no per-tunnel objects anywhere.

Everything hangs off one config object and its builders::

    KmsConfig().with_workload(AggregateProfile.storm(...))  # + .with_zones(...)

(the metro mesh carries its own ZonePlan, which ``kms()`` adopts).

Run:  python examples/metro_scale_kms.py
"""

from repro import AggregateProfile, KmsConfig, QKDSystem
from repro.kms import ReplenishmentConfig


def main() -> None:
    print("=== building the metro mesh ===")
    metro = QKDSystem(seed=2003).metro(
        n_zones=4, endpoints_per_zone=3, relays_per_zone=3, prefill_seconds=120.0
    )
    plan = metro.zone_plan
    print(f"  {plan!r}")
    print(f"  gateways: {dict(sorted(plan.gateways.items()))}")

    config = (
        KmsConfig(
            replenishment=ReplenishmentConfig(epoch_seconds=120.0, workers=2),
            store_high_water_bits=16_384,
            transport_key_bits=2_048,
        ).with_workload(
            AggregateProfile.storm(
                tunnels=50_000, mean_interval_seconds=600.0, alpha=2.2
            )
        )
        # .with_zones(...) would override the mesh's own plan here.
    )
    service = metro.kms(config)
    inter = sum(1 for p in service.pairs if not plan.same_zone(p))
    print(
        f"  {len(service.pairs)} gateway pairs "
        f"({inter} inter-zone via {len(service.trunk_stores)} trunk stores)"
    )

    print("\nserving 1 simulated hour of metro rekey demand ...\n")
    report = service.serve(hours=1.0)

    print("=== what the metro sustained ===")
    print(f"  zones                {report.zones}")
    print(f"  rekey demands        {report.demands}")
    print(f"  rekeys completed     {report.rekeys_completed}")
    print(f"  rekeys timed out     {report.rekeys_timed_out}")
    print(f"  delivered keys       {report.delivered_keys} "
          f"({report.key_bits_per_second:.1f} bits/s)")
    print(f"  trunk keys banked    {report.trunk_keys_delivered} "
          f"({report.trunk_key_bits} bits)")
    print(f"  rekey latency        p50 {report.rekey_latency_p50_seconds:.2f} s, "
          f"p99 {report.rekey_latency_p99_seconds:.2f} s")
    print(f"  scheduler overhead   {report.scheduler_overhead_per_epoch_seconds * 1e3:.3f} ms/epoch")
    print(f"  delivered digest     {report.delivered_digest[:16]}... "
          f"(bit-identical for any worker count)")


if __name__ == "__main__":
    main()
