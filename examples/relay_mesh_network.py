#!/usr/bin/env python3
"""The DARPA Quantum Network as a mesh: relays, failures and untrusted switches.

Reproduces the architectural arguments of sections 3 and 8 of the paper:

* a point-to-point link dies with its first fiber cut, while a relay mesh
  reroutes and keeps delivering end-to-end key;
* trusted relays extend reach but must be trusted — the example reports which
  relays saw each transported key in the clear;
* untrusted optical switches remove that trust but pay insertion loss, so
  every additional switch lowers the end-to-end key rate;
* interconnecting N enclaves pairwise needs N(N-1)/2 links, a key-distribution
  network needs as few as N.

Run:  python examples/relay_mesh_network.py
"""

from repro.network import (
    QKDNetwork,
    TrustedRelayNetwork,
    UntrustedSwitchNetwork,
    interconnection_cost,
)
from repro.util import DeterministicRNG


def main() -> None:
    print("=== building a metro-area QKD mesh (3 enclaves, 4 trusted relays) ===")
    net = QKDNetwork.relay_mesh(n_endpoints=3, n_relays=4, link_length_km=10.0,
                                rng=DeterministicRNG(1))
    for edge in net.links():
        print(f"  link {edge.node_a:12s} -- {edge.node_b:12s} "
              f"{edge.length_km:4.0f} km   {edge.secret_key_rate_bps:6.0f} secret bits/s")

    relay_net = TrustedRelayNetwork(net, DeterministicRNG(2))
    print("\nletting every link distill pairwise key for 60 seconds ...")
    relay_net.run_links_for(60.0)

    print("\n=== end-to-end key transport, healthy network ===")
    result = relay_net.transport_key("endpoint-0", "endpoint-1", key_bits=256)
    print(f"  delivered 256-bit key over {' -> '.join(result.path)}")
    print(f"  relays that held the key in the clear: {result.relays_exposed}")
    print(f"  pairwise key consumed: {result.pad_bits_consumed} bits")

    print("\n=== fiber cut on the primary path ===")
    primary_hop = (result.path[1], result.path[2])
    net.cut_link(*primary_hop)
    print(f"  cut link {primary_hop[0]} -- {primary_hop[1]}")
    rerouted = relay_net.transport_with_reroute("endpoint-0", "endpoint-1", key_bits=256)
    print(f"  delivery still succeeds: {rerouted.success}, new path {' -> '.join(rerouted.path)}")

    print("\n=== eavesdropping detected on another link ===")
    second_hop = (rerouted.path[1], rerouted.path[2])
    net.mark_eavesdropped(*second_hop)
    print(f"  link {second_hop[0]} -- {second_hop[1]} flagged by its QKD protocols")
    third = relay_net.transport_with_reroute("endpoint-0", "endpoint-1", key_bits=256)
    if third.success:
        print(f"  mesh still delivers: path {' -> '.join(third.path)}")
    else:
        print(f"  delivery failed: {third.failure_reason}")

    print("\n=== the same scenario on a bare point-to-point link ===")
    p2p = QKDNetwork.point_to_point(10.0)
    p2p_relays = TrustedRelayNetwork(p2p, DeterministicRNG(3))
    p2p_relays.run_links_for(60.0)
    ok = p2p_relays.transport_key("alice", "bob").success
    p2p.cut_link("alice", "bob")
    dead = p2p_relays.transport_key("alice", "bob")
    print(f"  before the cut: delivery {'succeeds' if ok else 'fails'}")
    print(f"  after the cut:  {dead.failure_reason}")

    print("\n=== untrusted all-optical switch paths ===")
    print("  switches need no trust, but each adds insertion loss:")
    for n_switches in range(0, 7):
        report = UntrustedSwitchNetwork.chain(n_switches, span_length_km=5.0)
        status = f"{report.secret_key_rate_bps:7.0f} bits/s" if report.viable else "   no key"
        print(f"    {n_switches} switches, {report.fiber_length_km:4.0f} km fiber, "
              f"{report.total_loss_db:4.1f} dB total: {status}")

    print("\n=== interconnection cost for N enclaves ===")
    for n in (2, 4, 8, 16, 32):
        cost = interconnection_cost(n)
        print(f"  N={n:2d}: pairwise {cost['pairwise_links']:4d} links, "
              f"QKD network (star) {cost['star_links']:3d} links")


if __name__ == "__main__":
    main()
