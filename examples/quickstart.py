#!/usr/bin/env python3
"""Quickstart: run the paper's first QKD link and distill some key.

This drives the weak-coherent link exactly as section 4 of the paper
describes it — a 1 MHz pulse train with mean photon number 0.1 through 10 km
of telecom fiber — and runs the full QKD protocol pipeline (sifting, Cascade,
entropy estimation, privacy amplification, authentication) over the
detections, printing what each stage saw.

Run:  python examples/quickstart.py
"""

from repro.link import LinkParameters, QKDLink
from repro.util import DeterministicRNG


def main() -> None:
    link = QKDLink(LinkParameters.paper_link(), rng=DeterministicRNG(2003), name="bbn-lab-link")

    print("=== DARPA Quantum Network: first link (weak-coherent, 10 km) ===")
    print(f"channel:            {link.channel!r}")
    print(f"expected QBER:      {link.expected_qber():.1%}")
    print(f"expected sifted:    {link.sifted_rate_bps():.0f} bits/s")
    print(f"analytic secret:    {link.estimated_secret_key_rate():.0f} bits/s")
    print()

    seconds = 2.0
    print(f"running the link for {seconds:.0f} seconds of channel time ...")
    report = link.run_seconds(seconds)

    print()
    print(f"slots transmitted:  {report.slots_transmitted:,}")
    print(f"sifted bits:        {report.sifted_bits}  ({report.sifted_rate_bps:.0f} bits/s)")
    print(f"measured QBER:      {report.mean_qber:.1%}")
    print(f"blocks distilled:   {report.blocks_distilled}  (aborted: {report.blocks_aborted})")
    print(f"distilled key:      {report.distilled_bits} bits  ({report.distilled_rate_bps:.0f} bits/s)")
    print(f"secret fraction:    {report.secret_fraction:.1%} of sifted bits survive")
    print()

    for outcome in report.outcomes:
        if outcome.aborted:
            print(f"  block {outcome.block_id}: ABORTED ({outcome.abort_reason})")
            continue
        cascade = outcome.cascade
        print(
            f"  block {outcome.block_id}: {outcome.sifted_bits} sifted bits, "
            f"QBER {outcome.qber:.1%}, {cascade.errors_corrected} errors corrected, "
            f"{cascade.disclosed_parities} parities disclosed, "
            f"{outcome.distilled_bits} bits distilled"
        )

    print()
    pool = link.engine.alice_pool
    print(f"Alice's key pool now holds {pool.available_bits} bits ready for the VPN.")
    print(f"Alice and Bob hold identical key: {link.engine.keys_match}")


if __name__ == "__main__":
    main()
