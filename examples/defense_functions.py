#!/usr/bin/env python3
"""Bennett versus Slutsky: how much key survives at a given error rate.

The Appendix of the paper tabulates two "defense functions" — estimates of
the information Eve can have gained from error-inducing attacks — and the
resultant-entropy formula that decides how hard privacy amplification must
squeeze.  This example sweeps the observed QBER and prints, for each defense
function, the components of the estimate and the distillable fraction of a
4096-bit corrected block, reproducing the trade-off the paper describes:
Bennett's linear estimate is gentler at realistic error rates, Slutsky's
frontier is more conservative and reaches zero sooner.

Run:  python examples/defense_functions.py
"""

from repro.core.entropy_estimation import (
    BennettDefense,
    EntropyEstimator,
    EntropyInputs,
    SlutskyDefense,
)


def main() -> None:
    block_bits = 4096
    transmitted = block_bits * 300          # ~1 sifted bit per 300 pulses
    disclosed = int(1.3 * block_bits * 0.35)  # typical Cascade disclosure at ~7 % QBER

    print("=== distillable key fraction vs observed QBER (4096-bit blocks) ===")
    print(f"{'QBER':>6s} | {'defense':>9s} {'Bennett':>9s} {'Slutsky':>9s} | "
          f"{'distill(B)':>10s} {'distill(S)':>10s}")
    print("-" * 66)

    bennett = EntropyEstimator(defense=BennettDefense(), confidence_sigmas=5.0)
    slutsky = EntropyEstimator(defense=SlutskyDefense(), confidence_sigmas=5.0)

    for qber_percent in (0.5, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 15):
        qber = qber_percent / 100.0
        errors = int(round(qber * block_bits))
        # Disclosure grows with the error rate (Cascade has to work harder).
        from repro.mathkit.entropy import binary_entropy
        parities = int(1.35 * binary_entropy(max(qber, 1e-4)) * block_bits) + 150
        inputs = EntropyInputs(
            sifted_bits=block_bits,
            error_bits=errors,
            transmitted_pulses=transmitted,
            disclosed_parities=parities,
            mean_photon_number=0.1,
        )
        estimate_b = bennett.estimate(inputs)
        estimate_s = slutsky.estimate(inputs)
        print(
            f"{qber_percent:5.1f}% | "
            f"{'':>9s} {estimate_b.defense.information_bits:9.0f} "
            f"{estimate_s.defense.information_bits:9.0f} | "
            f"{estimate_b.secret_fraction:10.1%} {estimate_s.secret_fraction:10.1%}"
        )

    print()
    print("At the paper's 6-8 % operating point the Bennett estimate still leaves a")
    print("usable fraction of every block, while the Slutsky frontier (with a 5-sigma")
    print("margin) is close to the break-even point — which is why the engine lets the")
    print("operator choose, exactly as the paper's protocol suite does.")

    print()
    print("=== the confidence parameter c ===")
    inputs = EntropyInputs(
        sifted_bits=block_bits,
        error_bits=int(0.065 * block_bits),
        transmitted_pulses=transmitted,
        disclosed_parities=disclosed,
        mean_photon_number=0.1,
    )
    for c in (0.0, 1.0, 3.0, 5.0, 7.0):
        estimator = EntropyEstimator(defense=BennettDefense(), confidence_sigmas=c)
        estimate = estimator.estimate(inputs)
        print(f"  c = {c:3.0f} sigma: distillable {estimate.distillable_bits:5d} bits, "
              f"eavesdropping success probability ~ {estimate.eavesdropping_success_probability:.1e}")


if __name__ == "__main__":
    main()
