#!/usr/bin/env python3
"""Eve on the fiber: what the protocols see under attack (paper sections 1, 6).

Three scenarios over the same 10 km link:

* a clean run, for reference;
* a full intercept-resend attack — Eve measures every photon and resends her
  result, which drives the QBER to ~25 % + the intrinsic error rate and makes
  every block fail the eavesdropping alarm;
* a photon-number-splitting (beam-splitting) attack — Eve silently keeps one
  photon from every multi-photon pulse; the QBER does not move at all, and the
  defense is purely the multi-photon charge in entropy estimation, which this
  example compares against what Eve actually learned.

Run:  python examples/eavesdropper_detection.py
"""

from repro.eve import BeamSplittingAttack, InterceptResendAttack
from repro.link import LinkParameters, QKDLink
from repro.util import DeterministicRNG


def run_scenario(name: str, attack, seconds: float = 1.5, seed: int = 11):
    link = QKDLink(LinkParameters.paper_link(), rng=DeterministicRNG(seed), name=name)
    if attack is not None:
        link.attach_attack(attack)
    report = link.run_seconds(seconds)
    return link, report


def main() -> None:
    print("=== scenario 1: clean link ===")
    _, clean = run_scenario("clean", None)
    print(f"  QBER {clean.mean_qber:.1%}, {clean.distilled_bits} bits distilled, "
          f"{clean.blocks_aborted} blocks aborted")

    print("\n=== scenario 2: intercept-resend on every pulse ===")
    attack = InterceptResendAttack(intercept_fraction=1.0)
    _, attacked = run_scenario("intercept-resend", attack)
    expected = 0.25
    print(f"  QBER {attacked.mean_qber:.1%} "
          f"(theory: ~{expected:.0%} induced + intrinsic error rate)")
    print(f"  blocks aborted by the eavesdropping alarm: {attacked.blocks_aborted}")
    print(f"  key distilled while under attack: {attacked.distilled_bits} bits")
    print("  -> Alice and Bob detect Eve and stop using the link, exactly as BB84 promises.")

    print("\n=== scenario 3: partial intercept-resend (25% of pulses) ===")
    partial_attack = InterceptResendAttack(intercept_fraction=0.25)
    _, partial = run_scenario("partial-intercept", partial_attack)
    print(f"  QBER {partial.mean_qber:.1%} "
          f"(theory: intrinsic + {0.25 * 0.25:.1%} induced)")
    print(f"  blocks aborted: {partial.blocks_aborted}, distilled: {partial.distilled_bits} bits")
    print("  -> even when some blocks survive, entropy estimation charges the extra errors")
    print("     against the key, shrinking what privacy amplification lets through.")

    print("\n=== scenario 4: photon-number splitting (transparent attack) ===")
    pns = BeamSplittingAttack()
    link, silent = run_scenario("beam-splitting", pns)
    print(f"  QBER {silent.mean_qber:.1%}  (unchanged: the attack induces no errors)")
    print(f"  blocks aborted: {silent.blocks_aborted}  (nothing to detect)")

    # Compare what Eve actually learned with what the engine charged for.
    frame = link.channel.transmit(1_000_000, attack=pns)
    eve_known = BeamSplittingAttack.eve_known_sifted_bits(frame)
    sifted = frame.n_sifted
    charged_fraction = 0.0
    for outcome in silent.outcomes:
        if outcome.entropy is not None and outcome.sifted_bits:
            charged_fraction = outcome.entropy.transparent.information_bits / outcome.sifted_bits
            break
    print(f"  over a fresh 1M-pulse frame: Eve holds photons for {eve_known} of "
          f"{sifted} sifted bits ({eve_known / max(sifted, 1):.1%})")
    print(f"  entropy estimation charged {charged_fraction:.1%} of each block for "
          "transparent leakage — the charge covers the leak, so the distilled key is safe.")


if __name__ == "__main__":
    main()
