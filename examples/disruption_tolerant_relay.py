#!/usr/bin/env python3
"""Disruption-tolerant key relay: custody transfer over a satellite pass.

Two ground stations share no fibre; their only QKD path crosses a LEO
satellite relay that sees each station for ninety seconds per pass — and
never both at once.  No end-to-end path exists at any single instant, so
live trusted-relay transport can never succeed.  ``repro.dtn`` handles it
the DTN way: the eastern station banks key bundles with the satellite
while it is overhead (custody transfer, one OTP hop), the satellite
carries them across the gap, and hands them down on the next western
pass.  The delivered key material is digest-identical to a run where
both links are up the whole time.

Run:  python examples/disruption_tolerant_relay.py
"""

from repro.dtn import ContactSchedule, ContactWindow, CustodyTransport
from repro.network.relay import TrustedRelayNetwork
from repro.network.topology import QKDNetwork
from repro.util.rng import DeterministicRNG


def satellite_mesh() -> TrustedRelayNetwork:
    """ground-east -- leo-sat -- ground-west: the only path is via orbit."""
    net = QKDNetwork()
    net.add_endpoint("ground-east")
    net.add_endpoint("ground-west")
    net.add_relay("leo-sat")
    net.add_link("ground-east", "leo-sat", 8.0)
    net.add_link("leo-sat", "ground-west", 8.0)
    relays = TrustedRelayNetwork(net, rng=DeterministicRNG(42))
    relays.run_links_for(90.0)  # distill pairwise pad while building the plan
    return relays


def pass_schedule(orbit_seconds: float = 600.0, passes: int = 3) -> ContactSchedule:
    """Each orbit: east sees the satellite for 90 s, west 300 s later."""
    schedule = ContactSchedule()
    east = [ContactWindow(k * orbit_seconds, k * orbit_seconds + 90.0) for k in range(passes)]
    west = [
        ContactWindow(k * orbit_seconds + 300.0, k * orbit_seconds + 390.0)
        for k in range(passes)
    ]
    schedule.set_windows("ground-east", "leo-sat", east)
    schedule.set_windows("leo-sat", "ground-west", west)
    return schedule


def run(schedule, label: str) -> CustodyTransport:
    transport = CustodyTransport(
        satellite_mesh(),
        schedule=schedule,
        rng=DeterministicRNG(2003),
        policy="scheduled",
        ttl_seconds=3600.0,
    )
    timeline = []
    transport.bind(
        lambda bundle: timeline.append(
            f"    t={bundle.delivered_at:7.1f}s  bundle {bundle.bundle_id} delivered "
            f"({bundle.key_bits} bits, {bundle.hops} hops)"
        )
    )
    print(f"--- {label} ---")
    now = 0.0
    for k in range(4):
        at = k * 400.0
        transport.run_until(at, start=now)
        now = at
        mark = len(timeline)  # instant delivery fires the callback inside submit
        bundle = transport.submit("ground-east", "ground-west", 256, now=at)
        timeline.insert(mark, f"    t={at:7.1f}s  bundle {bundle.bundle_id} submitted")
    transport.run_until(2400.0, start=now)
    for line in timeline:
        print(line)
    metrics = transport.metrics
    print(
        f"    delivered {metrics.bundles_delivered}/{metrics.bundles_submitted}, "
        f"pad consumed {metrics.pad_bits_consumed} bits, "
        f"occupancy peak {transport.occupancy_peak_bits} bits, "
        f"drained={transport.drained}"
    )
    return transport


def main() -> None:
    print("=== satellite-pass custody relay ===")
    intermittent = run(pass_schedule(), "intermittent: 90 s passes, never both links up")

    always_on = run(ContactSchedule(), "baseline: both links always up")

    print("\n=== determinism across topologies ===")
    print(f"    intermittent digest  {intermittent.delivered_digest[:32]}...")
    print(f"    always-on digest     {always_on.delivered_digest[:32]}...")
    assert intermittent.delivered_digest == always_on.delivered_digest
    print("    identical: custody changed *when* keys arrived, never *what* arrived")


if __name__ == "__main__":
    main()
