#!/usr/bin/env python3
"""A Virtual Private Network keyed by quantum cryptography (paper section 7).

This example reproduces the paper's headline scenario end to end:

1. a weak-coherent QKD link distills key into Alice's and Bob's key pools;
2. two VPN gateways bring up IKE with the QKD (Qblock) extension;
3. an AES tunnel protects ordinary enclave traffic, reseeding its keys from
   fresh QKD bits on every rollover ("about once a minute");
4. a second, one-time-pad tunnel carries the most sensitive traffic;
5. the racoon-style log of the negotiations — the modern equivalent of the
   paper's Fig 12 — is printed at the end.

Run:  python examples/qkd_vpn_tunnel.py
"""

from repro.ipsec import CipherSuite, GatewayPair, IPPacket, SecurityPolicy
from repro.link import LinkParameters, QKDLink
from repro.sim import SimClock
from repro.util import DeterministicRNG


def distill_key(seconds: float = 3.0):
    """Run the QKD link long enough to fill both key pools."""
    link = QKDLink(LinkParameters.paper_link(), rng=DeterministicRNG(42), name="vpn-link")
    print(f"distilling QKD key for {seconds:.0f} channel-seconds ...")
    report = link.run_seconds(seconds)
    print(
        f"  QBER {report.mean_qber:.1%}, {report.distilled_bits} bits distilled "
        f"({report.distilled_rate_bps:.0f} bits/s)"
    )
    return link


def main() -> None:
    link = distill_key()
    engine = link.engine

    # Top the pools up so the example can run several rekeys without waiting
    # for minutes of simulated channel time (a long-running deployment would
    # simply keep the link running).
    from repro.util.bits import BitString

    extra = BitString.random(40_000, DeterministicRNG(7))
    engine.alice_pool.add_bits(extra)
    engine.bob_pool.add_bits(extra)

    clock = SimClock()
    pair = GatewayPair(
        engine.alice_pool, engine.bob_pool, clock=clock, rng=DeterministicRNG(9)
    )

    pair.add_symmetric_policy(
        SecurityPolicy(
            name="enclave-traffic",
            source_network="10.1.0.0/16",
            destination_network="10.2.0.0/16",
            cipher_suite=CipherSuite.AES_QKD_RESEED,
            lifetime_seconds=60.0,          # rekey about once a minute
            qkd_bits_per_rekey=1024,        # one Qblock per rekey
        )
    )
    pair.add_symmetric_policy(
        SecurityPolicy(
            name="sensitive-traffic",
            source_network="10.1.50.0/24",
            destination_network="10.2.50.0/24",
            cipher_suite=CipherSuite.ONE_TIME_PAD,
            qkd_bits_per_rekey=16_384,      # pad material for the next interval
        )
    )
    pair.establish()
    print("\nIKE Phase 1 established between gateways "
          f"{pair.alice.name} and {pair.bob.name}")

    # --- ordinary AES-protected traffic, across several rollovers --------- #
    print("\nsending enclave traffic across three key rollovers ...")
    for minute in range(3):
        for packet_index in range(5):
            packet = IPPacket(
                source="10.1.0.10",
                destination="10.2.0.20",
                payload=f"minute {minute} packet {packet_index}: business as usual".encode(),
            )
            delivered = pair.transmit(packet)
            assert delivered is not None and delivered.payload == packet.payload
        clock.advance(61.0)  # expire the SA so the next packet triggers rollover
    alice_stats = pair.alice.statistics
    print(
        f"  {alice_stats.packets_sent} packets protected, "
        f"{alice_stats.negotiations} IKE phase-2 negotiations, "
        f"QKD bits consumed by IKE: {pair.alice.ike.qkd_bits_consumed}"
    )

    # --- one-time-pad traffic --------------------------------------------- #
    print("\nsending sensitive traffic over the one-time-pad tunnel ...")
    secret = IPPacket(
        source="10.1.50.1",
        destination="10.2.50.1",
        payload=b"launch codes are stored in the usual filing cabinet",
    )
    delivered = pair.transmit(secret)
    assert delivered is not None and delivered.payload == secret.payload
    print("  delivered intact; pad bytes consumed: "
          f"{len(secret.payload) + 64} (payload plus encapsulation overhead)")

    # --- Fig 12: the negotiation log --------------------------------------- #
    print("\n=== racoon log (compare with Fig 12 of the paper) ===")
    for line in pair.bob.ike.log_lines:
        print("  " + line)

    print("\nremaining key: "
          f"alice={engine.alice_pool.available_bits} bits, "
          f"bob={engine.bob_pool.available_bits} bits")


if __name__ == "__main__":
    main()
