#!/usr/bin/env python3
"""Networked key delivery: SAE clients drawing key from a KMS over TCP.

``continuous_operation.py`` shows the *production* side — the replenishment
loop distilling key into per-pair stores.  This example shows the
*consumption* side: the same mesh service puts its stores behind the
``repro.netkms`` asyncio front end, and a fleet of concurrent SAE clients
(think IKE daemons) draws keys over the versioned binary protocol.  A
deliberately old v1-only client joins the fleet to show the HELLO/WELCOME
negotiation stepping down, and the run ends with the server's per-request
metrics — including the served-key digest that pins *which* material left
the stores.

Run:  python examples/networked_delivery.py
"""

import asyncio

from repro import QKDSystem
from repro.kms import KmsConfig
from repro.netkms import NetworkKmsClient
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG

PAIRS = (("endpoint-0", "endpoint-1"), ("endpoint-0", "endpoint-2"))
BANK_BITS = 256 * 1024   # distilled key banked per pair before serving
KEY_BITS = 2048          # one IKE rekey's worth of key per request
REQUESTS_PER_CLIENT = 24


async def sae_fleet(port: int) -> None:
    async def one_sae(name: str, pair: tuple, versions: tuple) -> None:
        client = NetworkKmsClient("127.0.0.1", port, versions=versions, client_id=name)
        version = await client.connect()
        status = await client.status(pair)
        rate = (
            f", depleting {status.depletion_rate_millibps} millibits/s"
            if version >= 2 else ""  # the v2-only trailing field
        )
        print(f"  {name}: negotiated v{version}; "
              f"{status.available_bits} bits banked for {pair[0]}--{pair[1]}{rate}")
        for _ in range(REQUESTS_PER_CLIENT):
            key = await client.get_key(pair, bits=KEY_BITS)
            assert key.key_bits == KEY_BITS
        await client.close()

    await asyncio.gather(
        one_sae("ike-gateway-a", PAIRS[0], versions=(1, 2)),
        one_sae("ike-gateway-b", PAIRS[1], versions=(1, 2)),
        one_sae("legacy-gateway", PAIRS[0], versions=(1,)),  # v1-only: negotiates down
        one_sae("otp-encryptor", PAIRS[1], versions=(1, 2)),
    )


async def main() -> None:
    print("=== banking distilled key into the mesh service's stores ===")
    mesh = QKDSystem(seed=7).mesh(n_endpoints=3, n_relays=4)
    service = mesh.kms(config=KmsConfig(gateway_pairs=PAIRS))
    rng = DeterministicRNG(7)
    for pair, store in sorted(service.stores.items()):
        store.deposit(BitString.random(BANK_BITS, rng.fork_labeled(f"bank/{pair}")))
        print(f"  {pair[0]}--{pair[1]}: {store.available_bits} bits available")

    print("\n=== serving the stores over TCP (repro.netkms) ===")
    server = service.serve_network(port=0)
    async with server:
        print(f"  listening on {server.host}:{server.port}, "
              f"offering protocol v{server.versions[0]}..v{server.versions[-1]}")
        await sae_fleet(server.port)

    report = server.metrics.report()
    print("\n=== what the front end served ===")
    print(f"  requests             {report.requests} "
          f"({report.requests_per_second:.0f}/s)")
    print(f"  keys served          {report.keys_served} "
          f"({report.key_bits_served} bits)")
    print(f"  reserve latency      p50 {report.reserve_latency_p50_seconds * 1e6:.0f} us, "
          f"p99 {report.reserve_latency_p99_seconds * 1e6:.0f} us")
    print(f"  protocol errors      {sum(report.protocol_errors.values())}")
    print(f"  served digest        {report.served_digest[:16]}... "
          f"(order-independent pin over every delivered chunk)")


if __name__ == "__main__":
    asyncio.run(main())
