#!/usr/bin/env python3
"""The network *operated*: a multi-hour key-management soak with failures.

The paper's contribution is a continuously running QKD network, so this
example runs one: a 9-node relay mesh (5 endpoints, 4 relays) serves ten
IPsec gateway pairs' rekey demand for two simulated hours through
``repro.kms`` — links distill pairwise key epoch by epoch, end-to-end keys
are relayed into per-pair stores, IKE daemons drain the stores under a
Poisson rekey workload, and mid-run the mesh loses a link to a DoS cut and
another to a detected eavesdropper, rerouting both times.

Run:  python examples/continuous_operation.py
"""

from repro import QKDSystem
from repro.eve.intercept_resend import InterceptResendAttack
from repro.kms import KmsConfig, ReplenishmentConfig


def main() -> None:
    print("=== bringing up the mesh and its key-management service ===")
    mesh = QKDSystem(seed=7).mesh(n_endpoints=5, n_relays=4, prefill_seconds=0.0)
    service = mesh.kms(
        config=KmsConfig(replenishment=ReplenishmentConfig(epoch_seconds=120.0, workers=1))
    )
    print(f"  {len(service.pairs)} gateway pairs over {service.relays.network!r}")

    print("\narming failures: DoS cut at t=30min, eavesdropper at t=60min ...")
    service.schedule_link_cut(1800.0, "relay-0", "relay-1")
    service.schedule_attack(3600.0, "relay-2", "relay-3", InterceptResendAttack(1.0))

    print("serving 2 simulated hours of rekey demand ...\n")
    report = service.serve(hours=2.0)

    print("=== what the network sustained ===")
    print(f"  rekey demands        {report.demands}")
    print(f"  rekeys completed     {report.rekeys_completed}")
    print(f"  rekeys timed out     {report.rekeys_timed_out}")
    print(f"  starvation events    {report.starvation_events}")
    print(f"  delivered keys       {report.delivered_keys} "
          f"({report.delivered_key_bits} bits, {report.key_bits_per_second:.1f} bits/s)")
    print(f"  rekey latency        p50 {report.rekey_latency_p50_seconds:.2f} s, "
          f"p99 {report.rekey_latency_p99_seconds:.2f} s")
    print(f"  reroutes             {report.reroutes}")
    print(f"  eavesdropped links   {report.eavesdropped_links}")
    print(f"  delivered digest     {report.delivered_digest[:16]}... "
          f"(bit-identical for any worker count)")


if __name__ == "__main__":
    main()
