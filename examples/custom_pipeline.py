#!/usr/bin/env python3
"""Compose, instrument and customise the distillation pipeline.

Three things the stage-based engine (repro.pipeline) makes possible without
touching engine code:

1. build complete systems from one config object via the `repro.api` facade;
2. watch where the pipeline spends its time (per-stage telemetry);
3. swap a registered stage — here the defense function, and then a
   user-written stage that applies an extra safety haircut — purely through
   configuration.

Run:  python examples/custom_pipeline.py
"""

from repro import QKDSystem
from repro.core.engine import EngineParameters, QKDProtocolEngine
from repro.pipeline import (
    DEFAULT_STAGE_PLAN,
    PipelineStage,
    create_stage,
    register_stage,
)
from repro.util.bits import BitString
from repro.util.rng import DeterministicRNG


def noisy_pair(n, error_rate, seed):
    rng = DeterministicRNG(seed)
    alice = BitString.random(n, rng)
    errors = rng.sample(range(n), int(round(error_rate * n)))
    bob = alice.to_list()
    for index in errors:
        bob[index] ^= 1
    return alice, BitString(bob)


class ParanoidEntropyStage(PipelineStage):
    """A user-defined stage: the stock estimate minus a 10 % safety haircut.

    It wraps the registered ``entropy.estimate`` stage rather than
    reimplementing it — stages compose like any other object.
    """

    name = "entropy.paranoid"

    def __init__(self, services):
        super().__init__(services)
        self._inner = create_stage("entropy.estimate", services)

    def run(self, ctx):
        ctx = self._inner.run(ctx)
        ctx.entropy.distillable_bits = int(ctx.entropy.distillable_bits * 0.9)
        return ctx


def main() -> None:
    print("=== 1. whole systems from one config object ===")
    report = QKDSystem(seed=2003).link().run_seconds(1.0)
    print(f"  facade link:  {report.distilled_bits} bits distilled "
          f"({report.mean_qber:.1%} QBER)")

    print("\n=== 2. per-stage telemetry ===")
    engine = QKDProtocolEngine(rng=DeterministicRNG(1))
    for seed in range(4):
        alice, bob = noisy_pair(2048, 0.06, seed + 10)
        engine.distill_block(alice, bob, transmitted_pulses=500_000)
    for timing in engine.pipeline.telemetry.summary():
        share = timing.seconds / engine.pipeline.telemetry.total_seconds
        print(f"  {timing.stage:20s} {timing.calls} calls  "
              f"{timing.seconds * 1e3:8.2f} ms  {share:6.1%}")

    print("\n=== 3. swapping stages through configuration ===")
    register_stage("entropy.paranoid", ParanoidEntropyStage)
    plans = {
        "default (bennett)": None,
        "slutsky defense": tuple(
            "entropy.slutsky" if key == "entropy.estimate" else key
            for key in DEFAULT_STAGE_PLAN
        ),
        "paranoid haircut": tuple(
            "entropy.paranoid" if key == "entropy.estimate" else key
            for key in DEFAULT_STAGE_PLAN
        ),
    }
    alice, bob = noisy_pair(3072, 0.05, seed=42)
    for label, plan in plans.items():
        engine = QKDProtocolEngine(
            EngineParameters(stages=plan), DeterministicRNG(99)
        )
        outcome = engine.distill_block(alice, bob, transmitted_pulses=800_000)
        print(f"  {label:20s} -> {outcome.distilled_bits:4d} bits distilled")
    print("\n  same engine code, three pipelines — that is the point.")


if __name__ == "__main__":
    main()
