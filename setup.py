"""Package metadata for the repro QKD simulation library.

Metadata lives here; pyproject.toml carries only the build-system
declaration and shared tool configuration (ruff), so `pip install -e .`
keeps working in minimal environments.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_root = Path(__file__).parent
_paper = _root / "PAPER.md"
_long_description = _paper.read_text(encoding="utf-8") if _paper.exists() else ""
# Single source of truth for the version: the package itself.
_version = re.search(
    r'__version__ = "([^"]+)"', (_root / "src" / "repro" / "__init__.py").read_text()
).group(1)

setup(
    name="repro-qkd",
    version=_version,
    description=(
        "Simulation and protocol library reproducing 'Quantum Cryptography "
        "in Practice' (SIGCOMM 2003): BB84 optics, the Cascade distillation "
        "pipeline, QKD-keyed IPsec, and trusted-relay networks"
    ),
    long_description=_long_description,
    long_description_content_type="text/markdown",
    author="repro contributors",
    license="MIT",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "networkx>=2.8",
    ],
    extras_require={
        "test": ["pytest>=7.0"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Security :: Cryptography",
        "Topic :: System :: Networking",
    ],
    keywords="qkd quantum-cryptography bb84 cascade ipsec simulation",
)
